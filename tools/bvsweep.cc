/**
 * @file
 * bvsweep — parallel arch x trace sweep driver on the SweepEngine
 * (src/runner/). Runs an architecture grid over a suite selection
 * across worker threads, prints the per-trace ratio tables, and
 * exports machine-readable results:
 *
 *   bvsweep --arch base-victim --threads 8
 *   bvsweep --arch base-victim,vsc,dcc --traces friendly --limit 10
 *   bvsweep --arch all --json sweep.json --csv sweep.csv
 *
 * Sharded campaign modes (docs/robustness.md, "Sharded campaigns"):
 *
 *   bvsweep ... --workers 4 --journal-dir DIR     supervised campaign:
 *       fork/exec one worker per shard, restart crashed/stalled ones
 *       from their journals, merge and report
 *   bvsweep ... --shard 1/4 --journal FILE        run one shard's
 *       slice of the grid (what the supervisor execs)
 *   bvsweep ... --merge --journal-dir DIR         validate + merge the
 *       shard journals in DIR into the aggregate report
 *
 * Determinism guarantee: stdout (and the JSON/CSV ratio fields) are
 * byte-identical for every --threads value; with --stable-json the
 * merged report of a sharded campaign is byte-identical to the
 * uninterrupted single-process run. Progress goes to stderr.
 */

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/merge.hh"
#include "runner/report.hh"
#include "runner/supervisor.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "trace/workload_suite.hh"
#include "tracefile/file_trace_source.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace bvc;

namespace
{

struct Options
{
    std::vector<std::string> archNames{"base-victim"};
    std::string traces = "sensitive";
    std::vector<std::string> traceFiles;
    std::size_t limit = 0; //!< 0 = no limit
    unsigned threads = 0;  //!< 0 = auto
    std::string jsonPath;
    std::string csvPath;
    std::uint64_t warmup = 0;  //!< 0 = ExperimentOptions default
    std::uint64_t instr = 0;
    std::size_t mixes = 0;     //!< multiprogram mixes per arch (0 = off)
    std::size_t mixCores = 4;  //!< cores per mix (mixesN draws)
    std::size_t llcKb = 512;
    std::size_t ways = 16;
    bool quiet = false;
    unsigned retries = 0;
    double jobTimeout = 0.0;   //!< seconds; 0 = no watchdog
    std::string journalPath;
    bool resume = false;
    bool stableJson = false;

    std::size_t shardIndex = 0; //!< this worker's shard (--shard i/N)
    std::size_t shardCount = 0; //!< >0 = worker mode
    unsigned workers = 0;       //!< >0 = supervisor mode (--workers N)
    std::string journalDir;     //!< shard journal directory
    bool merge = false;         //!< merge mode (--merge)
    unsigned workerRestarts = 3; //!< supervisor restart budget/shard
    double shardTimeout = 0.0;  //!< per-process-attempt budget (s)
};

[[noreturn]] void
usage()
{
    std::printf(
        "bvsweep — parallel arch x trace sweep runner\n\n"
        "  --arch LIST       comma-separated LLC architectures to\n"
        "                    sweep against the uncompressed baseline:\n"
        "                    two-tag-naive | two-tag-modified |\n"
        "                    base-victim | vsc | dcc, or 'all'\n"
        "                    (default base-victim)\n"
        "  --traces SEL      sensitive | friendly | unfriendly | all |\n"
        "                    none (default sensitive)\n"
        "  --trace-file FILE add a captured .bvt trace file to the\n"
        "                    selection (repeatable; mixes freely with\n"
        "                    synthetic traces, see docs/trace_format.md)\n"
        "  --limit N         only the first N traces of the selection\n"
        "  --threads N       worker threads (default: BVC_THREADS or\n"
        "                    hardware concurrency)\n"
        "  --json FILE       write the bvc-sweep-v1 JSON report\n"
        "  --csv FILE        write the CSV report\n"
        "  --warmup N        warmup instructions per run\n"
        "  --instr N         measured instructions per run\n"
        "  --mixes N         also run N multiprogram mixes per arch\n"
        "                    (weighted speedup vs the uncompressed\n"
        "                    baseline, Section VI.C)\n"
        "  --mix-cores N     cores per mix, 1..64 (default 4)\n"
        "  --llc-kb N        LLC capacity in KB (default 512)\n"
        "  --ways N          LLC associativity (default 16)\n"
        "  --quiet           suppress the stderr progress reporter\n"
        "  --retries N       retry failed jobs up to N times with\n"
        "                    deterministic exponential backoff\n"
        "  --job-timeout S   per-attempt wall-clock budget in seconds;\n"
        "                    over-budget jobs are classified as\n"
        "                    timeouts and the campaign continues\n"
        "  --journal FILE    append a crash-safe fsync'd record per\n"
        "                    completed job to FILE\n"
        "  --resume FILE     resume a killed campaign from its\n"
        "                    journal: completed jobs are imported, the\n"
        "                    rest run and append to the same FILE\n"
        "  --stable-json     zero wall-clock fields in reports so two\n"
        "                    runs of one campaign compare bytewise\n"
        "\nSharded campaigns (docs/robustness.md):\n"
        "  --workers N       supervise N worker processes, one per\n"
        "                    shard of the job grid; crashed, killed or\n"
        "                    stalled workers are restarted from their\n"
        "                    shard journals, and the shard journals\n"
        "                    are merged into the aggregate report\n"
        "  --journal-dir DIR directory for shard journals (required\n"
        "                    with --workers / --merge)\n"
        "  --worker-restarts N  restarts allowed per shard (default 3)\n"
        "  --shard-timeout S    per-process-attempt wall-clock budget;\n"
        "                    an over-budget worker is SIGKILLed and\n"
        "                    restarted\n"
        "  --shard I/N       run only shard I of N (what --workers\n"
        "                    execs; requires --journal or --resume)\n"
        "  --merge           merge the shard journals in --journal-dir\n"
        "                    into the aggregate report, validating\n"
        "                    signatures, shard-set completeness,\n"
        "                    slice membership and torn tails\n");
    std::exit(1);
}

LlcArch
parseArch(const std::string &name)
{
    if (name == "uncompressed")
        return LlcArch::Uncompressed;
    if (name == "two-tag-naive")
        return LlcArch::TwoTagNaive;
    if (name == "two-tag-modified")
        return LlcArch::TwoTagModified;
    if (name == "base-victim")
        return LlcArch::BaseVictim;
    if (name == "vsc")
        return LlcArch::Vsc;
    if (name == "dcc")
        return LlcArch::Dcc;
    fatal("unknown --arch: " + name);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item = text.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--arch") {
            const std::string value = next(i);
            opts.archNames = value == "all"
                ? std::vector<std::string>{"two-tag-naive",
                                           "two-tag-modified",
                                           "base-victim", "vsc", "dcc"}
                : splitList(value);
            if (opts.archNames.empty())
                fatal("--arch needs at least one architecture");
        } else if (arg == "--traces") {
            opts.traces = next(i);
        } else if (arg == "--trace-file") {
            opts.traceFiles.push_back(next(i));
        } else if (arg == "--limit") {
            opts.limit = parsePositiveUint("--limit", next(i));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(
                parsePositiveUint("--threads", next(i)));
        } else if (arg == "--json") {
            opts.jsonPath = next(i);
        } else if (arg == "--csv") {
            opts.csvPath = next(i);
        } else if (arg == "--warmup") {
            opts.warmup = parsePositiveUint("--warmup", next(i));
        } else if (arg == "--instr") {
            opts.instr = parsePositiveUint("--instr", next(i));
        } else if (arg == "--mixes") {
            opts.mixes = parsePositiveUint("--mixes", next(i));
        } else if (arg == "--mix-cores") {
            opts.mixCores = parsePositiveUint("--mix-cores", next(i));
            if (opts.mixCores > 64)
                fatal("--mix-cores: at most 64 cores (one-word "
                      "coherence sharer masks)");
        } else if (arg == "--llc-kb") {
            opts.llcKb = parsePositiveUint("--llc-kb", next(i));
        } else if (arg == "--ways") {
            opts.ways = parsePositiveUint("--ways", next(i));
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                parsePositiveUint("--retries", next(i)));
        } else if (arg == "--job-timeout") {
            opts.jobTimeout =
                parsePositiveDouble("--job-timeout", next(i));
        } else if (arg == "--journal") {
            opts.journalPath = next(i);
            opts.resume = false;
        } else if (arg == "--resume") {
            opts.journalPath = next(i);
            opts.resume = true;
        } else if (arg == "--stable-json") {
            opts.stableJson = true;
        } else if (arg == "--shard") {
            const std::string value = next(i);
            const std::size_t slash = value.find('/');
            if (slash == std::string::npos)
                fatal("--shard expects I/N (e.g. 1/4)");
            opts.shardIndex = parseNonNegativeUint(
                "--shard index", value.substr(0, slash).c_str());
            opts.shardCount = parsePositiveUint(
                "--shard count", value.substr(slash + 1).c_str());
            if (opts.shardIndex >= opts.shardCount)
                fatal("--shard: index " +
                      std::to_string(opts.shardIndex) +
                      " out of range for " +
                      std::to_string(opts.shardCount) + " shards");
        } else if (arg == "--workers") {
            opts.workers = static_cast<unsigned>(
                parsePositiveUint("--workers", next(i)));
        } else if (arg == "--journal-dir") {
            opts.journalDir = next(i);
        } else if (arg == "--worker-restarts") {
            opts.workerRestarts = static_cast<unsigned>(
                parseNonNegativeUint("--worker-restarts", next(i)));
        } else if (arg == "--shard-timeout") {
            opts.shardTimeout =
                parsePositiveDouble("--shard-timeout", next(i));
        } else if (arg == "--merge") {
            opts.merge = true;
        } else {
            usage();
        }
    }
    const int modes = (opts.shardCount > 0 ? 1 : 0) +
                      (opts.workers > 0 ? 1 : 0) +
                      (opts.merge ? 1 : 0);
    if (modes > 1)
        fatal("--shard, --workers and --merge are mutually exclusive "
              "modes");
    if (opts.shardCount > 0 && opts.journalPath.empty())
        fatal("--shard requires --journal FILE or --resume FILE: a "
              "worker without a journal cannot be restarted safely");
    if ((opts.workers > 0 || opts.merge) && opts.journalDir.empty())
        fatal("--workers/--merge require --journal-dir DIR");
    if ((opts.workers > 0 || opts.merge) && !opts.journalPath.empty())
        fatal("--journal/--resume apply to single-process and worker "
              "runs; use --journal-dir for sharded campaigns");
    return opts;
}

std::vector<std::size_t>
selectTraces(const WorkloadSuite &suite, const Options &opts)
{
    std::vector<std::size_t> indices;
    if (opts.traces == "sensitive") {
        indices = suite.sensitiveIndices();
    } else if (opts.traces == "friendly") {
        indices = suite.friendlyIndices();
    } else if (opts.traces == "unfriendly") {
        indices = suite.unfriendlyIndices();
    } else if (opts.traces == "all") {
        for (std::size_t i = 0; i < suite.all().size(); ++i)
            indices.push_back(i);
    } else if (opts.traces == "none") {
        // File-only campaigns: --traces none --trace-file a.bvt ...
    } else {
        fatal("unknown --traces selection: " + opts.traces);
    }
    if (opts.limit > 0 && indices.size() > opts.limit)
        indices.resize(opts.limit);
    return indices;
}

/**
 * The fully-expanded campaign: workloads, the job grid and its layout
 * facts. Built identically in every mode (run, worker, supervisor,
 * merge) from the same Options, which is what makes shard slices and
 * merged reports line up with the single-process run byte-for-byte.
 */
struct CampaignPlan
{
    std::vector<WorkloadInfo> workloads; //!< selected workloads
    std::vector<SweepJob> jobs;          //!< the full job grid
    /** Jobs per workload: 1 baseline + one per swept arch. */
    std::size_t stride = 0;
    std::size_t mixJobsBase = 0; //!< index of the first mix job
    std::size_t mixCount = 0;    //!< multiprogram mixes in the grid
    ExperimentOptions runOpts;   //!< resolved windows/threads
};

CampaignPlan
buildCampaign(const Options &opts)
{
    CampaignPlan plan;
    const WorkloadSuite suite(512 * 1024);
    const std::vector<std::size_t> indices = selectTraces(suite, opts);

    // The campaign's workload list: the synthetic suite selection
    // followed by any file-backed traces, one unified vector so the
    // job layout below treats both identically.
    plan.workloads.reserve(indices.size() + opts.traceFiles.size());
    for (const std::size_t idx : indices)
        plan.workloads.push_back(suite.all()[idx]);
    for (const std::string &path : opts.traceFiles) {
        WorkloadInfo info;
        try {
            info.params = traceParamsFromBvt(path);
        } catch (const BvcError &e) {
            fatal(e.what());
        }
        plan.workloads.push_back(std::move(info));
    }
    if (plan.workloads.empty() && opts.mixes == 0)
        fatal("trace selection is empty");

    ExperimentOptions runOpts = ExperimentOptions::fromEnv();
    if (opts.warmup > 0)
        runOpts.warmup = opts.warmup;
    if (opts.instr > 0)
        runOpts.measure = opts.instr;
    runOpts.threads = opts.threads;
    plan.runOpts = runOpts;

    SystemConfig baseCfg = SystemConfig::benchDefaults();
    baseCfg.arch = LlcArch::Uncompressed;
    baseCfg.llcBytes = opts.llcKb * 1024;
    baseCfg.llcWays = opts.ways;

    // Job layout: per trace, one baseline run followed by one run per
    // swept architecture — (1 + archs) * traces jobs total, aggregated
    // by index so output is identical for every thread count.
    plan.stride = 1 + opts.archNames.size();
    plan.jobs.reserve(plan.workloads.size() * plan.stride);
    for (const WorkloadInfo &info : plan.workloads) {
        plan.jobs.push_back({baseCfg, info.params, runOpts,
                             "uncompressed", {}});
        for (const std::string &archName : opts.archNames) {
            SystemConfig cfg = baseCfg;
            cfg.arch = parseArch(archName);
            plan.jobs.push_back({cfg, info.params, runOpts, archName,
                                 {}});
        }
    }

    // Multiprogram mixes (Section VI.C), appended after the per-trace
    // grid: one job per (mix, arch). Each job runs the uncompressed
    // baseline and the arch over the SAME N-core mix and reports the
    // weighted speedup in RunResult::ipc (the DRAM fields come from
    // the arch run). Jobs stay self-contained so the thread pool can
    // schedule them freely.
    plan.mixJobsBase = plan.jobs.size();
    if (opts.mixes > 0) {
        const auto drawn = suite.mixesN(opts.mixCores, opts.mixes);
        std::vector<std::vector<TraceParams>> mixTraces;
        for (std::size_t m = 0; m < drawn.size(); ++m) {
            std::vector<TraceParams> params;
            params.reserve(opts.mixCores);
            for (const std::size_t idx : drawn[m])
                params.push_back(suite.all()[idx].params);
            mixTraces.push_back(std::move(params));
        }
        plan.mixCount = mixTraces.size();
        for (std::size_t m = 0; m < mixTraces.size(); ++m) {
            for (const std::string &archName : opts.archNames) {
                SystemConfig cfg = baseCfg;
                cfg.arch = parseArch(archName);
                SweepJob job;
                job.config = cfg;
                job.trace.name = "mix" + std::to_string(m) + "-" +
                    std::to_string(opts.mixCores) + "core";
                job.opts = runOpts;
                job.label = archName;
                job.fn = [baseCfg, cfg, params = mixTraces[m],
                          runOpts]() {
                    MultiCoreSystem baseSys(baseCfg, params);
                    const MultiRunResult base =
                        baseSys.run(runOpts.warmup, runOpts.measure);
                    MultiCoreSystem testSys(cfg, params);
                    const MultiRunResult test =
                        testSys.run(runOpts.warmup, runOpts.measure);
                    RunResult out;
                    out.ipc = test.weightedSpeedup(base);
                    for (const std::uint64_t n : test.instructions)
                        out.instructions += n;
                    out.dramReads = test.dramReads;
                    out.dramWrites = test.dramWrites;
                    out.llcDemandHits = test.llcDemandHits;
                    out.llcDemandMisses = test.llcDemandMisses;
                    out.llcVictimHits = test.llcVictimHits;
                    return out;
                };
                plan.jobs.push_back(std::move(job));
            }
        }
    }
    return plan;
}

/**
 * Build the report from `results`, fill ratios/buckets, export
 * JSON/CSV, apply the job-failure policy, and print the stdout
 * tables. Shared verbatim between the single-process run and the
 * supervisor/merge paths — the byte-identity guarantee of a merged
 * sharded campaign rests on all modes funneling through this one
 * function.
 */
void
emitCampaignReport(const Options &opts, const CampaignPlan &plan,
                   const SweepTelemetry &telemetry,
                   const std::vector<JobResult> &results)
{
    // Fill ratios vs each trace's paired baseline into the report.
    // Ratios are only defined where both runs of a pair succeeded;
    // failed jobs keep has_ratios = false so the report of a partly
    // failed campaign is still exportable below.
    SweepReport report =
        buildReport("bvsweep", telemetry, plan.jobs, results);
    const std::size_t stride = plan.stride;
    for (std::size_t t = 0; t < plan.workloads.size(); ++t) {
        const WorkloadInfo &info = plan.workloads[t];
        const JobResult &baseJob = results[t * stride];
        const RunResult &base = baseJob.result;
        for (std::size_t a = 0; a < opts.archNames.size(); ++a) {
            RunRecord &rec = report.records[t * stride + 1 + a];
            if (!baseJob.ok || !rec.ok)
                continue;
            const RunResult &test = rec.result;
            panicIf(base.ipc <= 0.0, "baseline IPC must be positive");
            rec.hasRatios = true;
            rec.ipcRatio = test.ipc / base.ipc;
            rec.dramReadRatio = base.dramReads > 0
                ? static_cast<double>(test.dramReads) /
                      static_cast<double>(base.dramReads)
                : 1.0;
        }
        for (std::size_t j = 0; j < stride; ++j)
            report.records[t * stride + j].bucket =
                !info.params.filePath.empty() ? "file-backed"
                : info.compressionFriendly   ? "compression-friendly"
                                             : "low-compressibility";
    }
    // Mix records: RunResult::ipc already is the weighted speedup vs
    // the in-job baseline, so expose it as the ratio directly.
    for (std::size_t j = plan.mixJobsBase; j < report.records.size();
         ++j) {
        RunRecord &rec = report.records[j];
        rec.bucket = "multiprogram-mix";
        if (!rec.ok)
            continue;
        rec.hasRatios = true;
        rec.ipcRatio = rec.result.ipc;
        rec.dramReadRatio = 1.0;
    }

    if (opts.stableJson)
        zeroTimings(report);

    // Export before the failure-policy check: a failed campaign still
    // leaves a machine-readable post-mortem (written atomically, so a
    // fatal() below cannot leave a torn report either).
    if (!opts.jsonPath.empty()) {
        writeFile(opts.jsonPath, toJson(report));
        std::fprintf(stderr, "wrote %s\n", opts.jsonPath.c_str());
    }
    if (!opts.csvPath.empty()) {
        writeFile(opts.csvPath, toCsv(report));
        std::fprintf(stderr, "wrote %s\n", opts.csvPath.c_str());
    }
    failOnJobErrors(results);

    std::printf("bvsweep: %zu traces x %zu arch(s), llc %zuKB "
                "%zu-way, warmup %llu, instr %llu\n",
                plan.workloads.size(), opts.archNames.size(),
                opts.llcKb, opts.ways,
                static_cast<unsigned long long>(plan.runOpts.warmup),
                static_cast<unsigned long long>(plan.runOpts.measure));

    for (std::size_t a = 0;
         !plan.workloads.empty() && a < opts.archNames.size(); ++a) {
        Table table({"trace", "bucket", "IPC ratio",
                     "DRAM read ratio"});
        std::vector<double> ipcRatios, dramRatios;
        for (std::size_t t = 0; t < plan.workloads.size(); ++t) {
            const RunRecord &rec =
                report.records[t * stride + 1 + a];
            table.addRow({rec.trace, rec.bucket,
                          Table::num(rec.ipcRatio),
                          Table::num(rec.dramReadRatio)});
            ipcRatios.push_back(rec.ipcRatio);
            dramRatios.push_back(rec.dramReadRatio);
        }
        std::printf("\n[%s vs uncompressed]\n%s",
                    opts.archNames[a].c_str(),
                    table.render().c_str());
        std::printf("geomean IPC ratio %.4f  geomean DRAM read ratio "
                    "%.4f\n",
                    geomean(ipcRatios), geomean(dramRatios));
    }

    if (plan.mixCount > 0) {
        for (std::size_t a = 0; a < opts.archNames.size(); ++a) {
            Table table({"mix", "weighted speedup"});
            std::vector<double> speedups;
            for (std::size_t m = 0; m < plan.mixCount; ++m) {
                const RunRecord &rec = report.records
                    [plan.mixJobsBase + m * opts.archNames.size() + a];
                table.addRow({rec.trace, Table::num(rec.ipcRatio)});
                speedups.push_back(rec.ipcRatio);
            }
            std::printf("\n[%s %zu-core mixes vs uncompressed]\n%s",
                        opts.archNames[a].c_str(), opts.mixCores,
                        table.render().c_str());
            std::printf("geomean weighted speedup %.4f\n",
                        geomean(speedups));
        }
    }
}

std::string
shardJournalPath(const std::string &dir, std::size_t shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".journal";
}

/** All "*.journal" files in `dir`, sorted for deterministic order. */
std::vector<std::string>
listJournals(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        fatal("cannot open journal directory '" + dir + "': " +
              std::strerror(errno));
    std::vector<std::string> paths;
    const std::string suffix = ".journal";
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            paths.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** This binary's path, for re-exec'ing workers. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * The grid/engine flags to pass through to workers: the original argv
 * minus orchestration flags (mode selectors, report outputs, journal
 * paths — the supervisor appends per-worker versions of those).
 */
std::vector<std::string>
workerPassthroughArgv(int argc, char **argv)
{
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers" || arg == "--journal-dir" ||
            arg == "--json" || arg == "--csv" || arg == "--journal" ||
            arg == "--resume" || arg == "--shard" ||
            arg == "--worker-restarts" || arg == "--shard-timeout") {
            ++i; // skip the flag's value too
            continue;
        }
        if (arg == "--merge" || arg == "--stable-json" ||
            arg == "--quiet")
            continue;
        out.push_back(arg);
    }
    return out;
}

/** Worker mode: run this shard's slice, journal it, and exit 0 —
 *  job failures live in the journal for the supervisor/merge to
 *  judge; a nonzero exit is reserved for harness failures. */
int
runWorker(const Options &opts, const CampaignPlan &plan)
{
    SweepOptions sweepOpts;
    sweepOpts.threads = opts.threads;
    sweepOpts.progress = !opts.quiet;
    sweepOpts.retries = opts.retries;
    sweepOpts.jobTimeoutSeconds = opts.jobTimeout;
    sweepOpts.journalPath = opts.journalPath;
    sweepOpts.resume = opts.resume;
    sweepOpts.tool = "bvsweep";
    sweepOpts.shardIndex = opts.shardIndex;
    sweepOpts.shardCount = opts.shardCount;
    if (const char *attempt = std::getenv(kWorkerAttemptEnv))
        if (attempt[0] != '\0')
            sweepOpts.workerAttempt = static_cast<unsigned>(
                parseNonNegativeUint(kWorkerAttemptEnv, attempt));
    SweepEngine engine(sweepOpts);
    try {
        (void)engine.run(plan.jobs);
    } catch (const BvcError &e) {
        fatal(e.what());
    }
    const SweepTelemetry &telemetry = engine.lastTelemetry();
    std::fprintf(stderr,
                 "shard %zu/%zu done: %zu/%zu jobs in %.2f s "
                 "(%zu resumed)\n",
                 opts.shardIndex, opts.shardCount,
                 telemetry.ownedJobs, telemetry.jobs,
                 telemetry.wallSeconds, telemetry.resumedJobs);
    return 0;
}

/** Supervisor mode: fork/exec one worker per shard, restart failures
 *  from their journals, then merge and report. */
int
runSupervisor(const Options &opts, const CampaignPlan &plan, int argc,
              char **argv)
{
    if (::mkdir(opts.journalDir.c_str(), 0755) != 0 &&
        errno != EEXIST)
        fatal("cannot create journal directory '" + opts.journalDir +
              "': " + std::strerror(errno));

    const std::string exe = selfExePath(argv[0]);
    const std::vector<std::string> grid =
        workerPassthroughArgv(argc, argv);
    std::vector<WorkerSpec> specs;
    specs.reserve(opts.workers);
    for (unsigned w = 0; w < opts.workers; ++w) {
        WorkerSpec spec;
        spec.shardIndex = w;
        spec.journalPath = shardJournalPath(opts.journalDir, w);
        const std::string shardArg =
            std::to_string(w) + "/" + std::to_string(opts.workers);
        spec.freshArgv.push_back(exe);
        spec.freshArgv.insert(spec.freshArgv.end(), grid.begin(),
                              grid.end());
        spec.freshArgv.insert(spec.freshArgv.end(),
                              {"--quiet", "--shard", shardArg});
        spec.resumeArgv = spec.freshArgv;
        spec.freshArgv.insert(spec.freshArgv.end(),
                              {"--journal", spec.journalPath});
        spec.resumeArgv.insert(spec.resumeArgv.end(),
                               {"--resume", spec.journalPath});
        specs.push_back(std::move(spec));
    }

    SupervisorOptions supOpts;
    supOpts.restarts = opts.workerRestarts;
    supOpts.shardTimeoutSeconds = opts.shardTimeout;
    Supervisor supervisor(supOpts);
    const std::vector<ShardOutcome> outcomes = supervisor.run(specs);

    // Failed shards become merge provenance: their missing jobs are
    // gap-filled as explicit failures instead of aborting the report.
    std::vector<ShardError> provenance;
    unsigned totalAttempts = 0;
    for (const ShardOutcome &o : outcomes) {
        totalAttempts += o.attempts;
        if (!o.ok)
            provenance.push_back({o.shardIndex, o.category, o.message,
                                  o.attempts});
    }
    std::vector<std::string> paths;
    for (const WorkerSpec &spec : specs)
        if (::access(spec.journalPath.c_str(), F_OK) == 0)
            paths.push_back(spec.journalPath);

    MergeResult merged;
    try {
        merged = mergeShardJournals(paths, plan.jobs, provenance);
    } catch (const BvcError &e) {
        fatal(e.what());
    }
    std::fprintf(stderr,
                 "supervised campaign: %u shards, %u process "
                 "attempts, %zu failed shards, %zu jobs merged, "
                 "%zu gap-filled\n",
                 opts.workers, totalAttempts, provenance.size(),
                 merged.mergedRecords, merged.gapFilledJobs);

    SweepTelemetry telemetry;
    telemetry.jobs = plan.jobs.size();
    telemetry.ownedJobs = plan.jobs.size();
    telemetry.threads = resolveThreadCount(opts.threads);
    emitCampaignReport(opts, plan, telemetry, merged.results);
    return 0;
}

/** Merge mode: strict validation of the shard journals in
 *  --journal-dir, then the aggregate report. */
int
runMerge(const Options &opts, const CampaignPlan &plan)
{
    const std::vector<std::string> paths =
        listJournals(opts.journalDir);
    if (paths.empty())
        fatal("no shard journals (*.journal) in '" + opts.journalDir +
              "'");
    MergeResult merged;
    try {
        merged = mergeShardJournals(paths, plan.jobs);
    } catch (const BvcError &e) {
        fatal(e.what());
    }
    std::fprintf(stderr,
                 "merged %zu shard journals: %zu jobs\n",
                 paths.size(), merged.mergedRecords);
    SweepTelemetry telemetry;
    telemetry.jobs = plan.jobs.size();
    telemetry.ownedJobs = plan.jobs.size();
    telemetry.threads = resolveThreadCount(opts.threads);
    emitCampaignReport(opts, plan, telemetry, merged.results);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const CampaignPlan plan = buildCampaign(opts);

    if (opts.shardCount > 0)
        return runWorker(opts, plan);
    if (opts.workers > 0)
        return runSupervisor(opts, plan, argc, argv);
    if (opts.merge)
        return runMerge(opts, plan);

    SweepOptions sweepOpts;
    sweepOpts.threads = opts.threads;
    sweepOpts.progress = !opts.quiet;
    sweepOpts.retries = opts.retries;
    sweepOpts.jobTimeoutSeconds = opts.jobTimeout;
    sweepOpts.journalPath = opts.journalPath;
    sweepOpts.resume = opts.resume;
    sweepOpts.tool = "bvsweep";
    SweepEngine engine(sweepOpts);
    std::vector<JobResult> results;
    try {
        results = engine.run(plan.jobs);
    } catch (const BvcError &e) {
        // Harness-level failure (unreadable or mismatched resume
        // journal) — a structured user-facing error, not a bug.
        fatal(e.what());
    }
    const SweepTelemetry &telemetry = engine.lastTelemetry();
    emitCampaignReport(opts, plan, telemetry, results);

    // Throughput footer (wall-clock stats go to stderr so stdout stays
    // byte-identical across thread counts and machines).
    std::fprintf(stderr,
                 "sweep done: %zu jobs in %.2f s (%.2f jobs/s, "
                 "%u threads, %.2f job-seconds, %zu resumed)\n",
                 telemetry.jobs, telemetry.wallSeconds,
                 telemetry.jobsPerSecond(), telemetry.threads,
                 telemetry.jobSeconds, telemetry.resumedJobs);
    return 0;
}
