/**
 * @file
 * bvsweep — parallel arch x trace sweep driver on the SweepEngine
 * (src/runner/). Runs an architecture grid over a suite selection
 * across worker threads, prints the per-trace ratio tables, and
 * exports machine-readable results:
 *
 *   bvsweep --arch base-victim --threads 8
 *   bvsweep --arch base-victim,vsc,dcc --traces friendly --limit 10
 *   bvsweep --arch all --json sweep.json --csv sweep.csv
 *
 * Determinism guarantee: stdout (and the JSON/CSV ratio fields) are
 * byte-identical for every --threads value; progress goes to stderr.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/report.hh"
#include "runner/sweep.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "trace/workload_suite.hh"
#include "tracefile/file_trace_source.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace bvc;

namespace
{

struct Options
{
    std::vector<std::string> archNames{"base-victim"};
    std::string traces = "sensitive";
    std::vector<std::string> traceFiles;
    std::size_t limit = 0; //!< 0 = no limit
    unsigned threads = 0;  //!< 0 = auto
    std::string jsonPath;
    std::string csvPath;
    std::uint64_t warmup = 0;  //!< 0 = ExperimentOptions default
    std::uint64_t instr = 0;
    std::size_t mixes = 0;     //!< multiprogram mixes per arch (0 = off)
    std::size_t mixCores = 4;  //!< cores per mix (mixesN draws)
    std::size_t llcKb = 512;
    std::size_t ways = 16;
    bool quiet = false;
    unsigned retries = 0;
    double jobTimeout = 0.0;   //!< seconds; 0 = no watchdog
    std::string journalPath;
    bool resume = false;
    bool stableJson = false;
};

[[noreturn]] void
usage()
{
    std::printf(
        "bvsweep — parallel arch x trace sweep runner\n\n"
        "  --arch LIST       comma-separated LLC architectures to\n"
        "                    sweep against the uncompressed baseline:\n"
        "                    two-tag-naive | two-tag-modified |\n"
        "                    base-victim | vsc | dcc, or 'all'\n"
        "                    (default base-victim)\n"
        "  --traces SEL      sensitive | friendly | unfriendly | all |\n"
        "                    none (default sensitive)\n"
        "  --trace-file FILE add a captured .bvt trace file to the\n"
        "                    selection (repeatable; mixes freely with\n"
        "                    synthetic traces, see docs/trace_format.md)\n"
        "  --limit N         only the first N traces of the selection\n"
        "  --threads N       worker threads (default: BVC_THREADS or\n"
        "                    hardware concurrency)\n"
        "  --json FILE       write the bvc-sweep-v1 JSON report\n"
        "  --csv FILE        write the CSV report\n"
        "  --warmup N        warmup instructions per run\n"
        "  --instr N         measured instructions per run\n"
        "  --mixes N         also run N multiprogram mixes per arch\n"
        "                    (weighted speedup vs the uncompressed\n"
        "                    baseline, Section VI.C)\n"
        "  --mix-cores N     cores per mix, 1..64 (default 4)\n"
        "  --llc-kb N        LLC capacity in KB (default 512)\n"
        "  --ways N          LLC associativity (default 16)\n"
        "  --quiet           suppress the stderr progress reporter\n"
        "  --retries N       retry failed jobs up to N times with\n"
        "                    deterministic exponential backoff\n"
        "  --job-timeout S   per-attempt wall-clock budget in seconds;\n"
        "                    over-budget jobs are classified as\n"
        "                    timeouts and the campaign continues\n"
        "  --journal FILE    append a crash-safe fsync'd record per\n"
        "                    completed job to FILE\n"
        "  --resume FILE     resume a killed campaign from its\n"
        "                    journal: completed jobs are imported, the\n"
        "                    rest run and append to the same FILE\n"
        "  --stable-json     zero wall-clock fields in reports so two\n"
        "                    runs of one campaign compare bytewise\n");
    std::exit(1);
}

LlcArch
parseArch(const std::string &name)
{
    if (name == "uncompressed")
        return LlcArch::Uncompressed;
    if (name == "two-tag-naive")
        return LlcArch::TwoTagNaive;
    if (name == "two-tag-modified")
        return LlcArch::TwoTagModified;
    if (name == "base-victim")
        return LlcArch::BaseVictim;
    if (name == "vsc")
        return LlcArch::Vsc;
    if (name == "dcc")
        return LlcArch::Dcc;
    fatal("unknown --arch: " + name);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item = text.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--arch") {
            const std::string value = next(i);
            opts.archNames = value == "all"
                ? std::vector<std::string>{"two-tag-naive",
                                           "two-tag-modified",
                                           "base-victim", "vsc", "dcc"}
                : splitList(value);
            if (opts.archNames.empty())
                fatal("--arch needs at least one architecture");
        } else if (arg == "--traces") {
            opts.traces = next(i);
        } else if (arg == "--trace-file") {
            opts.traceFiles.push_back(next(i));
        } else if (arg == "--limit") {
            opts.limit = parsePositiveUint("--limit", next(i));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(
                parsePositiveUint("--threads", next(i)));
        } else if (arg == "--json") {
            opts.jsonPath = next(i);
        } else if (arg == "--csv") {
            opts.csvPath = next(i);
        } else if (arg == "--warmup") {
            opts.warmup = parsePositiveUint("--warmup", next(i));
        } else if (arg == "--instr") {
            opts.instr = parsePositiveUint("--instr", next(i));
        } else if (arg == "--mixes") {
            opts.mixes = parsePositiveUint("--mixes", next(i));
        } else if (arg == "--mix-cores") {
            opts.mixCores = parsePositiveUint("--mix-cores", next(i));
            if (opts.mixCores > 64)
                fatal("--mix-cores: at most 64 cores (one-word "
                      "coherence sharer masks)");
        } else if (arg == "--llc-kb") {
            opts.llcKb = parsePositiveUint("--llc-kb", next(i));
        } else if (arg == "--ways") {
            opts.ways = parsePositiveUint("--ways", next(i));
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                parsePositiveUint("--retries", next(i)));
        } else if (arg == "--job-timeout") {
            opts.jobTimeout =
                parsePositiveDouble("--job-timeout", next(i));
        } else if (arg == "--journal") {
            opts.journalPath = next(i);
            opts.resume = false;
        } else if (arg == "--resume") {
            opts.journalPath = next(i);
            opts.resume = true;
        } else if (arg == "--stable-json") {
            opts.stableJson = true;
        } else {
            usage();
        }
    }
    return opts;
}

std::vector<std::size_t>
selectTraces(const WorkloadSuite &suite, const Options &opts)
{
    std::vector<std::size_t> indices;
    if (opts.traces == "sensitive") {
        indices = suite.sensitiveIndices();
    } else if (opts.traces == "friendly") {
        indices = suite.friendlyIndices();
    } else if (opts.traces == "unfriendly") {
        indices = suite.unfriendlyIndices();
    } else if (opts.traces == "all") {
        for (std::size_t i = 0; i < suite.all().size(); ++i)
            indices.push_back(i);
    } else if (opts.traces == "none") {
        // File-only campaigns: --traces none --trace-file a.bvt ...
    } else {
        fatal("unknown --traces selection: " + opts.traces);
    }
    if (opts.limit > 0 && indices.size() > opts.limit)
        indices.resize(opts.limit);
    return indices;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const WorkloadSuite suite(512 * 1024);
    const std::vector<std::size_t> indices = selectTraces(suite, opts);

    // The campaign's workload list: the synthetic suite selection
    // followed by any file-backed traces, one unified vector so the
    // job layout below treats both identically.
    std::vector<WorkloadInfo> workloads;
    workloads.reserve(indices.size() + opts.traceFiles.size());
    for (const std::size_t idx : indices)
        workloads.push_back(suite.all()[idx]);
    for (const std::string &path : opts.traceFiles) {
        WorkloadInfo info;
        try {
            info.params = traceParamsFromBvt(path);
        } catch (const BvcError &e) {
            fatal(e.what());
        }
        workloads.push_back(std::move(info));
    }
    if (workloads.empty() && opts.mixes == 0)
        fatal("trace selection is empty");

    ExperimentOptions runOpts = ExperimentOptions::fromEnv();
    if (opts.warmup > 0)
        runOpts.warmup = opts.warmup;
    if (opts.instr > 0)
        runOpts.measure = opts.instr;
    runOpts.threads = opts.threads;

    SystemConfig baseCfg = SystemConfig::benchDefaults();
    baseCfg.arch = LlcArch::Uncompressed;
    baseCfg.llcBytes = opts.llcKb * 1024;
    baseCfg.llcWays = opts.ways;

    // Job layout: per trace, one baseline run followed by one run per
    // swept architecture — (1 + archs) * traces jobs total, aggregated
    // by index so output is identical for every thread count.
    const std::size_t stride = 1 + opts.archNames.size();
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * stride);
    for (const WorkloadInfo &info : workloads) {
        jobs.push_back({baseCfg, info.params, runOpts, "uncompressed",
                        {}});
        for (const std::string &archName : opts.archNames) {
            SystemConfig cfg = baseCfg;
            cfg.arch = parseArch(archName);
            jobs.push_back({cfg, info.params, runOpts, archName, {}});
        }
    }

    // Multiprogram mixes (Section VI.C), appended after the per-trace
    // grid: one job per (mix, arch). Each job runs the uncompressed
    // baseline and the arch over the SAME N-core mix and reports the
    // weighted speedup in RunResult::ipc (the DRAM fields come from
    // the arch run). Jobs stay self-contained so the thread pool can
    // schedule them freely.
    const std::size_t mixJobsBase = jobs.size();
    std::vector<std::vector<TraceParams>> mixTraces;
    if (opts.mixes > 0) {
        const auto drawn = suite.mixesN(opts.mixCores, opts.mixes);
        for (std::size_t m = 0; m < drawn.size(); ++m) {
            std::vector<TraceParams> params;
            params.reserve(opts.mixCores);
            for (const std::size_t idx : drawn[m])
                params.push_back(suite.all()[idx].params);
            mixTraces.push_back(std::move(params));
        }
        for (std::size_t m = 0; m < mixTraces.size(); ++m) {
            for (const std::string &archName : opts.archNames) {
                SystemConfig cfg = baseCfg;
                cfg.arch = parseArch(archName);
                SweepJob job;
                job.config = cfg;
                job.trace.name = "mix" + std::to_string(m) + "-" +
                    std::to_string(opts.mixCores) + "core";
                job.opts = runOpts;
                job.label = archName;
                job.fn = [baseCfg, cfg, params = mixTraces[m],
                          runOpts]() {
                    MultiCoreSystem baseSys(baseCfg, params);
                    const MultiRunResult base =
                        baseSys.run(runOpts.warmup, runOpts.measure);
                    MultiCoreSystem testSys(cfg, params);
                    const MultiRunResult test =
                        testSys.run(runOpts.warmup, runOpts.measure);
                    RunResult out;
                    out.ipc = test.weightedSpeedup(base);
                    for (const std::uint64_t n : test.instructions)
                        out.instructions += n;
                    out.dramReads = test.dramReads;
                    out.dramWrites = test.dramWrites;
                    out.llcDemandHits = test.llcDemandHits;
                    out.llcDemandMisses = test.llcDemandMisses;
                    out.llcVictimHits = test.llcVictimHits;
                    return out;
                };
                jobs.push_back(std::move(job));
            }
        }
    }

    SweepOptions sweepOpts;
    sweepOpts.threads = opts.threads;
    sweepOpts.progress = !opts.quiet;
    sweepOpts.retries = opts.retries;
    sweepOpts.jobTimeoutSeconds = opts.jobTimeout;
    sweepOpts.journalPath = opts.journalPath;
    sweepOpts.resume = opts.resume;
    sweepOpts.tool = "bvsweep";
    SweepEngine engine(sweepOpts);
    std::vector<JobResult> results;
    try {
        results = engine.run(jobs);
    } catch (const BvcError &e) {
        // Harness-level failure (unreadable or mismatched resume
        // journal) — a structured user-facing error, not a bug.
        fatal(e.what());
    }
    const SweepTelemetry &telemetry = engine.lastTelemetry();

    // Fill ratios vs each trace's paired baseline into the report.
    // Ratios are only defined where both runs of a pair succeeded;
    // failed jobs keep has_ratios = false so the report of a partly
    // failed campaign is still exportable below.
    SweepReport report =
        buildReport("bvsweep", telemetry, jobs, results);
    for (std::size_t t = 0; t < workloads.size(); ++t) {
        const WorkloadInfo &info = workloads[t];
        const JobResult &baseJob = results[t * stride];
        const RunResult &base = baseJob.result;
        for (std::size_t a = 0; a < opts.archNames.size(); ++a) {
            RunRecord &rec = report.records[t * stride + 1 + a];
            if (!baseJob.ok || !rec.ok)
                continue;
            const RunResult &test = rec.result;
            panicIf(base.ipc <= 0.0, "baseline IPC must be positive");
            rec.hasRatios = true;
            rec.ipcRatio = test.ipc / base.ipc;
            rec.dramReadRatio = base.dramReads > 0
                ? static_cast<double>(test.dramReads) /
                      static_cast<double>(base.dramReads)
                : 1.0;
        }
        for (std::size_t j = 0; j < stride; ++j)
            report.records[t * stride + j].bucket =
                !info.params.filePath.empty() ? "file-backed"
                : info.compressionFriendly   ? "compression-friendly"
                                             : "low-compressibility";
    }
    // Mix records: RunResult::ipc already is the weighted speedup vs
    // the in-job baseline, so expose it as the ratio directly.
    for (std::size_t j = mixJobsBase; j < report.records.size(); ++j) {
        RunRecord &rec = report.records[j];
        rec.bucket = "multiprogram-mix";
        if (!rec.ok)
            continue;
        rec.hasRatios = true;
        rec.ipcRatio = rec.result.ipc;
        rec.dramReadRatio = 1.0;
    }

    if (opts.stableJson)
        zeroTimings(report);

    // Export before the failure-policy check: a failed campaign still
    // leaves a machine-readable post-mortem (written atomically, so a
    // fatal() below cannot leave a torn report either).
    if (!opts.jsonPath.empty()) {
        writeFile(opts.jsonPath, toJson(report));
        std::fprintf(stderr, "wrote %s\n", opts.jsonPath.c_str());
    }
    if (!opts.csvPath.empty()) {
        writeFile(opts.csvPath, toCsv(report));
        std::fprintf(stderr, "wrote %s\n", opts.csvPath.c_str());
    }
    failOnJobErrors(results);

    std::printf("bvsweep: %zu traces x %zu arch(s), llc %zuKB "
                "%zu-way, warmup %llu, instr %llu\n",
                workloads.size(), opts.archNames.size(), opts.llcKb,
                opts.ways,
                static_cast<unsigned long long>(runOpts.warmup),
                static_cast<unsigned long long>(runOpts.measure));

    for (std::size_t a = 0;
         !workloads.empty() && a < opts.archNames.size(); ++a) {
        Table table({"trace", "bucket", "IPC ratio",
                     "DRAM read ratio"});
        std::vector<double> ipcRatios, dramRatios;
        for (std::size_t t = 0; t < workloads.size(); ++t) {
            const RunRecord &rec =
                report.records[t * stride + 1 + a];
            table.addRow({rec.trace, rec.bucket,
                          Table::num(rec.ipcRatio),
                          Table::num(rec.dramReadRatio)});
            ipcRatios.push_back(rec.ipcRatio);
            dramRatios.push_back(rec.dramReadRatio);
        }
        std::printf("\n[%s vs uncompressed]\n%s",
                    opts.archNames[a].c_str(),
                    table.render().c_str());
        std::printf("geomean IPC ratio %.4f  geomean DRAM read ratio "
                    "%.4f\n",
                    geomean(ipcRatios), geomean(dramRatios));
    }

    if (!mixTraces.empty()) {
        for (std::size_t a = 0; a < opts.archNames.size(); ++a) {
            Table table({"mix", "weighted speedup"});
            std::vector<double> speedups;
            for (std::size_t m = 0; m < mixTraces.size(); ++m) {
                const RunRecord &rec = report.records
                    [mixJobsBase + m * opts.archNames.size() + a];
                table.addRow({rec.trace, Table::num(rec.ipcRatio)});
                speedups.push_back(rec.ipcRatio);
            }
            std::printf("\n[%s %zu-core mixes vs uncompressed]\n%s",
                        opts.archNames[a].c_str(), opts.mixCores,
                        table.render().c_str());
            std::printf("geomean weighted speedup %.4f\n",
                        geomean(speedups));
        }
    }

    // Throughput footer (wall-clock stats go to stderr so stdout stays
    // byte-identical across thread counts and machines).
    std::fprintf(stderr,
                 "sweep done: %zu jobs in %.2f s (%.2f jobs/s, "
                 "%u threads, %.2f job-seconds, %zu resumed)\n",
                 telemetry.jobs, telemetry.wallSeconds,
                 telemetry.jobsPerSecond(), telemetry.threads,
                 telemetry.jobSeconds, telemetry.resumedJobs);
    return 0;
}
