/**
 * @file
 * bvtrace — capture, convert and inspect .bvt binary trace files
 * (docs/trace_format.md):
 *
 *   bvtrace synth --trace SPECFP/milc.0 --count 500000 --out milc.bvt
 *   bvtrace convert --in champsim.txt --out app.bvt --name myapp
 *   bvtrace info app.bvt
 *   bvtrace verify app.bvt
 *
 * `synth` exports a suite trace's exact record stream (same seed, same
 * DataPattern) so `bvsim --trace-file` reproduces the in-memory run
 * bit for bit; `convert` ingests ChampSim-style text traces.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/workload_suite.hh"
#include "tracefile/bvt_reader.hh"
#include "tracefile/bvt_writer.hh"
#include "tracefile/convert.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/logging.hh"

using namespace bvc;

namespace
{

[[noreturn]] void
usage()
{
    std::printf(
        "bvtrace — .bvt trace capture/convert/inspect tool\n\n"
        "  bvtrace synth --trace NAME --out FILE\n"
        "      [--count N]            records to capture (default "
        "600000)\n"
        "      [--records-per-block N] block granularity (default "
        "4096)\n"
        "      export a workload-suite trace (see bvsim "
        "--list-traces)\n\n"
        "  bvtrace convert --in FILE --out FILE\n"
        "      [--name NAME]          trace name (default: input "
        "stem)\n"
        "      [--category C]         SPECFP | SPECINT | Productivity "
        "| Client\n"
        "      [--pattern P]          zeros | small-ints | "
        "pointer-heap |\n"
        "                             narrow-ints | floats | random |\n"
        "                             mixed-good | mixed-poor\n"
        "      [--pattern-seed N]     DataPattern seed (default 1)\n"
        "      [--records-per-block N]\n"
        "      ingest a ChampSim-style text trace "
        "(docs/trace_format.md)\n\n"
        "  bvtrace info FILE          print the header\n"
        "  bvtrace verify FILE        walk every block, check CRCs "
        "and counts\n");
    std::exit(1);
}

WorkloadCategory
parseCategory(const std::string &name)
{
    if (name == "SPECFP") return WorkloadCategory::SpecFp;
    if (name == "SPECINT") return WorkloadCategory::SpecInt;
    if (name == "Productivity") return WorkloadCategory::Productivity;
    if (name == "Client") return WorkloadCategory::Client;
    fatal("unknown --category: " + name);
}

DataPatternKind
parsePattern(const std::string &name)
{
    if (name == "zeros") return DataPatternKind::Zeros;
    if (name == "small-ints") return DataPatternKind::SmallInts;
    if (name == "pointer-heap") return DataPatternKind::PointerHeap;
    if (name == "narrow-ints") return DataPatternKind::NarrowInts;
    if (name == "floats") return DataPatternKind::Floats;
    if (name == "random") return DataPatternKind::Random;
    if (name == "mixed-good") return DataPatternKind::MixedGood;
    if (name == "mixed-poor") return DataPatternKind::MixedPoor;
    fatal("unknown --pattern: " + name);
}

/** "dir/app.trace.txt" -> "app.trace" (CLI default for --name). */
std::string
stemOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t start =
        slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    const std::size_t len = (dot != std::string::npos && dot > start)
        ? dot - start
        : std::string::npos;
    return path.substr(start, len);
}

int
cmdSynth(int argc, char **argv)
{
    std::string traceName, outPath;
    std::uint64_t count = 600'000;
    std::uint32_t recordsPerBlock = kBvtDefaultRecordsPerBlock;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace")
            traceName = next(i);
        else if (arg == "--out")
            outPath = next(i);
        else if (arg == "--count")
            count = parsePositiveUint("--count", next(i));
        else if (arg == "--records-per-block")
            recordsPerBlock = static_cast<std::uint32_t>(
                parsePositiveUint("--records-per-block", next(i)));
        else
            usage();
    }
    if (traceName.empty() || outPath.empty())
        usage();

    const WorkloadSuite suite(512 * 1024);
    const WorkloadInfo *info = nullptr;
    for (const WorkloadInfo &candidate : suite.all())
        if (candidate.params.name == traceName)
            info = &candidate;
    if (info == nullptr)
        fatal("unknown trace '" + traceName +
              "' (use bvsim --list-traces)");

    SyntheticTrace trace(info->params);
    BvtTraceMeta meta;
    meta.name = info->params.name;
    meta.category = info->params.category;
    meta.pattern = trace.dataPattern().kind();
    // The pattern's EXACT seed (the generator derives it from the
    // trace seed): replay binds the identical DataPattern to
    // functional memory, so values — not just addresses — match.
    meta.patternSeed = trace.dataPattern().seed();
    meta.traceSeed = info->params.seed;
    const std::uint64_t written =
        writeBvt(outPath, trace, count, meta, recordsPerBlock);
    std::printf("wrote %s: %" PRIu64 " records of %s\n",
                outPath.c_str(), written, traceName.c_str());
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    std::string inPath, outPath, name;
    BvtTraceMeta meta;
    meta.patternSeed = 1;
    std::uint32_t recordsPerBlock = kBvtDefaultRecordsPerBlock;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in")
            inPath = next(i);
        else if (arg == "--out")
            outPath = next(i);
        else if (arg == "--name")
            name = next(i);
        else if (arg == "--category")
            meta.category = parseCategory(next(i));
        else if (arg == "--pattern")
            meta.pattern = parsePattern(next(i));
        else if (arg == "--pattern-seed")
            meta.patternSeed =
                parsePositiveUint("--pattern-seed", next(i));
        else if (arg == "--records-per-block")
            recordsPerBlock = static_cast<std::uint32_t>(
                parsePositiveUint("--records-per-block", next(i)));
        else
            usage();
    }
    if (inPath.empty() || outPath.empty())
        usage();
    meta.name = name.empty() ? stemOf(inPath) : name;

    const ConvertStats stats =
        convertTextTrace(inPath, outPath, meta, recordsPerBlock);
    std::printf("converted %s -> %s: %" PRIu64 " records from %" PRIu64
                " lines\n",
                inPath.c_str(), outPath.c_str(), stats.records,
                stats.lines);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 1)
        usage();
    const BvtHeader h = readBvtHeader(argv[0]);
    std::printf("file            %s\n", argv[0]);
    std::printf("name            %s\n", h.name.c_str());
    std::printf("version         %u\n", h.version);
    std::printf("category        %s\n", categoryName(h.category));
    std::printf("pattern         %s (seed %" PRIu64 ")\n",
                DataPattern::kindName(h.pattern).c_str(),
                h.patternSeed);
    std::printf("trace seed      %" PRIu64 "\n", h.traceSeed);
    std::printf("records         %" PRIu64 "\n", h.recordCount);
    std::printf("blocks          %" PRIu64 " (%u records/block)\n",
                h.blockCount, h.recordsPerBlock);
    std::printf("header          %u bytes, crc %08x\n", h.headerBytes,
                h.headerCrc);
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    if (argc != 1)
        usage();
    const BvtVerifyStats stats = verifyBvt(argv[0]);
    std::printf("ok: %" PRIu64 " records in %" PRIu64
                " blocks (%" PRIu64 " body bytes)\n",
                stats.records, stats.blocks, stats.bodyBytes);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "synth")
            return cmdSynth(argc - 2, argv + 2);
        if (cmd == "convert")
            return cmdConvert(argc - 2, argv + 2);
        if (cmd == "info")
            return cmdInfo(argc - 2, argv + 2);
        if (cmd == "verify")
            return cmdVerify(argc - 2, argv + 2);
    } catch (const BvcError &e) {
        std::fprintf(stderr, "bvtrace: %s\n", e.what());
        return 1;
    }
    usage();
}
