/**
 * @file
 * Integration tests for the cache hierarchy: latencies, inclusion,
 * back-invalidation, writeback routing and downgrade hints.
 */

#include <gtest/gtest.h>

#include "compress/bdi.hh"
#include "core/base_victim_cache.hh"
#include "core/uncompressed_llc.hh"
#include "cpu/hierarchy.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    cfg.l1iBytes = 4 * 1024;
    cfg.l1dBytes = 4 * 1024;
    cfg.l1iWays = 4;
    cfg.l1dWays = 4;
    cfg.l2Bytes = 16 * 1024;
    cfg.l2Ways = 8;
    cfg.prefetch = false; // deterministic latency tests
    return cfg;
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : pattern_(DataPatternKind::MixedGood, 9),
          mem_([this](Addr blk, std::uint8_t *out) {
              pattern_.fillLine(blk, out);
          }),
          llc_(64 * 1024, 8, ReplacementKind::Nru, VictimReplKind::Ecm,
               bdi_),
          hier_(smallConfig(), llc_, dram_, mem_)
    {
    }

    BdiCompressor bdi_;
    DataPattern pattern_;
    FunctionalMemory mem_;
    Dram dram_;
    BaseVictimLlc llc_;
    Hierarchy hier_;
};

TEST_F(HierarchyTest, L1HitLatency)
{
    hier_.load(0x400, 0x10000, 0);
    EXPECT_EQ(hier_.load(0x400, 0x10000, 100), 3u);
}

TEST_F(HierarchyTest, L2HitLatencyAfterL1Eviction)
{
    hier_.load(0x400, 0x10000, 0);
    // Evict 0x10000 from the 4KB L1 (same L1 set, different L2 sets).
    for (unsigned i = 1; i <= 4; ++i)
        hier_.load(0x400, 0x10000 + i * 4096, 0);
    EXPECT_EQ(hier_.load(0x400, 0x10000, 1000), 10u);
}

TEST_F(HierarchyTest, LlcHitIncludesTagAndDecompression)
{
    hier_.load(0x400, 0x10000, 0);
    // A 2KB stride maps to the same L1 set (16 sets) and L2 set (32
    // sets) but walks four different LLC sets, so the line leaves the
    // L1/L2 while staying resident in the 64KB LLC.
    for (unsigned i = 1; i <= 9; ++i)
        hier_.load(0x400, 0x10000 + i * 2048, 0);
    const unsigned latency = hier_.load(0x400, 0x10000, 50000);
    // 24 base + 1 tag (+2 if this particular line compresses).
    EXPECT_GE(latency, 25u);
    EXPECT_LE(latency, 27u);
}

TEST_F(HierarchyTest, MissGoesToDram)
{
    const unsigned latency = hier_.load(0x400, 0x900000, 0);
    EXPECT_GT(latency, 100u); // DRAM access dominates
    EXPECT_EQ(hier_.stats().get("dram_demand_reads"), 1u);
}

TEST_F(HierarchyTest, InclusionHoldsUnderRandomTraffic)
{
    Rng rng(5);
    for (int step = 0; step < 30000; ++step) {
        const Addr addr = rng.range(4096) * kLineBytes;
        if (rng.chance(0.3))
            hier_.store(0x500, addr, rng.next(), step);
        else
            hier_.load(0x400 + rng.range(16) * 4, addr, step);
        if (step % 2500 == 0) {
            ASSERT_TRUE(hier_.checkInclusion()) << "step " << step;
        }
    }
    EXPECT_TRUE(hier_.checkInclusion());
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(HierarchyTest, StoreUpdatesFunctionalMemory)
{
    hier_.store(0x500, 0x20000, 0xabcd, 0);
    EXPECT_EQ(mem_.load64(0x20000), 0xabcdu);
}

TEST_F(HierarchyTest, DirtyLinesReachMemoryExactlyOnce)
{
    // Store a line, then flush it down the hierarchy by thrashing.
    hier_.store(0x500, 0x30000, 77, 0);
    Rng rng(6);
    for (int step = 0; step < 40000; ++step)
        hier_.load(0x400, 0x100000 + rng.range(4096) * kLineBytes,
                   step);
    // The dirty line must have been written back to DRAM.
    EXPECT_GE(dram_.stats().get("writes"), 1u);
    EXPECT_EQ(mem_.load64(0x30000), 77u);
}

TEST_F(HierarchyTest, BackInvalidationRemovesUpperCopies)
{
    hier_.load(0x400, 0x40000, 0);
    ASSERT_TRUE(hier_.l1d().probe(0x40000));
    const bool dirty = hier_.invalidateUpper(0x40000);
    EXPECT_FALSE(dirty);
    EXPECT_FALSE(hier_.l1d().probe(0x40000));
    EXPECT_FALSE(hier_.l2().probe(0x40000));
}

TEST_F(HierarchyTest, BackInvalidationReportsDirtyCopies)
{
    hier_.store(0x500, 0x50000, 1, 0);
    EXPECT_TRUE(hier_.invalidateUpper(0x50000));
}

TEST_F(HierarchyTest, CustomBackInvalidateHookIsUsed)
{
    std::size_t calls = 0;
    hier_.setBackInvalidateFn([&](Addr blk) {
        ++calls;
        return hier_.invalidateUpper(blk);
    });
    Rng rng(8);
    for (int step = 0; step < 20000; ++step)
        hier_.load(0x400, 0x200000 + rng.range(4096) * kLineBytes,
                   step);
    EXPECT_GT(calls, 0u);
}

TEST_F(HierarchyTest, InstructionFetchesUseTheL1I)
{
    hier_.fetch(0x7000, 0);
    EXPECT_EQ(hier_.fetch(0x7000, 10), 3u);
    EXPECT_TRUE(hier_.l1i().probe(0x7000));
    EXPECT_FALSE(hier_.l1d().probe(0x7000));
}

TEST(HierarchyPrefetch, PrefetchingReducesDemandMissesOnStreams)
{
    const BdiCompressor bdi;
    const DataPattern pattern(DataPatternKind::MixedGood, 9);

    auto runStream = [&](bool prefetch) {
        FunctionalMemory mem([&](Addr blk, std::uint8_t *out) {
            pattern.fillLine(blk, out);
        });
        Dram dram;
        UncompressedLlc llc(64 * 1024, 8, ReplacementKind::Nru);
        HierarchyConfig cfg = smallConfig();
        cfg.prefetch = prefetch;
        Hierarchy hier(cfg, llc, dram, mem);
        for (unsigned i = 0; i < 20000; ++i)
            hier.load(0x400, 0x1000000 + i * kLineBytes,
                      i * 4);
        return hier.stats().get("dram_demand_reads");
    };

    const auto without = runStream(false);
    const auto with = runStream(true);
    EXPECT_LT(with, without / 2);
}

TEST(HierarchyChar, L2EvictionsSendDowngradeHints)
{
    const BdiCompressor bdi;
    const DataPattern pattern(DataPatternKind::MixedGood, 9);
    FunctionalMemory mem([&](Addr blk, std::uint8_t *out) {
        pattern.fillLine(blk, out);
    });
    Dram dram;

    /** LLC wrapper counting downgrade hints. */
    class HintCounter : public UncompressedLlc
    {
      public:
        using UncompressedLlc::UncompressedLlc;
        void
        downgradeHint(Addr blk) override
        {
            ++hints;
            UncompressedLlc::downgradeHint(blk);
        }
        std::size_t hints = 0;
    };

    HintCounter llc(64 * 1024, 8, ReplacementKind::Char);
    Hierarchy hier(smallConfig(), llc, dram, mem);
    Rng rng(3);
    for (int step = 0; step < 30000; ++step)
        hier.load(0x400, rng.range(2048) * kLineBytes, step);
    EXPECT_GT(llc.hints, 0u);
}

} // namespace
} // namespace bvc
