/**
 * @file
 * Tests for the .bvt trace-file subsystem (src/tracefile/): write/read
 * round-trips, every corruption class the reader must reject with a
 * BvcError{Io} naming a byte offset, the decode-ahead replayer's
 * equivalence with the synchronous fallback, text-trace conversion,
 * and end-to-end stats equality between a generator run and a replay
 * of its exported file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "sim/experiment.hh"
#include "trace/generators.hh"
#include "tracefile/bvt_reader.hh"
#include "tracefile/bvt_writer.hh"
#include "tracefile/convert.hh"
#include "tracefile/file_trace_source.hh"
#include "util/crc32.hh"
#include "util/error.hh"

namespace bvc
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "bvt_" + name;
}

TraceParams
testParams()
{
    TraceParams p;
    p.name = "unit";
    p.seed = 1234;
    p.loadFrac = 0.30;
    p.storeFrac = 0.10;
    p.streamFrac = 0.20;
    p.chaseFrac = 0.10;
    p.wsBytes = 256 * 1024;
    p.hotBytes = 16 * 1024;
    p.residentBytes = 128 * 1024;
    p.hotFrac = 0.5;
    p.residentFrac = 0.3;
    p.streamBytes = 1 << 20;
    p.chaseBytes = 128 * 1024;
    return p;
}

/** Export `count` records of the unit trace with small blocks. */
std::string
writeUnitTrace(const std::string &name, std::uint64_t count,
               std::uint32_t recordsPerBlock = 256)
{
    const std::string path = tempPath(name);
    SyntheticTrace trace(testParams());
    BvtTraceMeta meta;
    meta.name = "unit";
    meta.pattern = trace.dataPattern().kind();
    meta.patternSeed = trace.dataPattern().seed();
    meta.traceSeed = testParams().seed;
    EXPECT_EQ(writeBvt(path, trace, count, meta, recordsPerBlock),
              count);
    return path;
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open());
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

/** EXPECT a BvcError{Io} whose message names a byte offset. */
template <typename Fn>
void
expectIoErrorWithOffset(Fn &&fn)
{
    try {
        fn();
        FAIL() << "expected BvcError{Io}";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("at byte"),
                  std::string::npos)
            << e.what();
    }
}

TEST(BvtFormat, VarintRoundTrip)
{
    const std::uint64_t values[] = {0, 1, 127, 128, 300, 0xFFFF,
                                    1ULL << 40, ~0ULL};
    for (const std::uint64_t v : values) {
        std::vector<std::uint8_t> buf;
        bvt::putVarint(buf, v);
        std::uint64_t got = 0;
        const std::uint8_t *end =
            bvt::readVarint(buf.data(), buf.data() + buf.size(), got);
        ASSERT_NE(end, nullptr);
        EXPECT_EQ(end, buf.data() + buf.size());
        EXPECT_EQ(got, v);
    }
}

TEST(BvtFormat, VarintRejectsTruncationAndOverflow)
{
    std::vector<std::uint8_t> buf;
    bvt::putVarint(buf, ~0ULL);
    std::uint64_t got = 0;
    // Truncated at every prefix length.
    for (std::size_t len = 0; len < buf.size(); ++len)
        EXPECT_EQ(bvt::readVarint(buf.data(), buf.data() + len, got),
                  nullptr);
    // 10th byte contributing more than bit 63 overflows.
    std::vector<std::uint8_t> over(9, 0x80);
    over.push_back(0x02);
    EXPECT_EQ(bvt::readVarint(over.data(), over.data() + over.size(),
                              got),
              nullptr);
}

TEST(BvtFormat, ZigzagRoundTrip)
{
    const std::int64_t values[] = {0, 1, -1, 63, -64, 1LL << 40,
                                   -(1LL << 40), INT64_MAX, INT64_MIN};
    for (const std::int64_t v : values)
        EXPECT_EQ(bvt::zigzagDecode(bvt::zigzagEncode(v)), v);
}

TEST(BvtRoundTrip, WriterReaderPreservesEveryRecord)
{
    const std::string path = tempPath("roundtrip.bvt");
    SyntheticTrace source(testParams());
    std::vector<TraceRecord> expected;
    BvtTraceMeta meta;
    meta.name = "unit";
    {
        BvtWriter writer(path, meta, 128);
        TraceRecord r;
        for (int i = 0; i < 1000; ++i) {
            ASSERT_TRUE(source.next(r));
            writer.append(r);
            expected.push_back(r);
        }
        writer.finish();
        EXPECT_EQ(writer.recordCount(), 1000u);
        EXPECT_EQ(writer.blockCount(), 8u); // ceil(1000/128)
    }

    BvtReader reader(path);
    EXPECT_EQ(reader.header().name, "unit");
    EXPECT_EQ(reader.header().recordCount, 1000u);
    std::vector<TraceRecord> block;
    std::uint64_t offset = reader.bodyOffset();
    std::size_t i = 0;
    while ((offset = reader.readBlock(offset, block)) != 0) {
        for (const TraceRecord &r : block) {
            ASSERT_LT(i, expected.size());
            EXPECT_EQ(r.pc, expected[i].pc);
            EXPECT_EQ(r.addr, expected[i].addr);
            EXPECT_EQ(r.value, expected[i].value);
            EXPECT_EQ(r.kind, expected[i].kind);
            EXPECT_EQ(r.dependsOnPrevLoad,
                      expected[i].dependsOnPrevLoad);
            ++i;
        }
    }
    EXPECT_EQ(i, expected.size());

    const BvtVerifyStats stats = verifyBvt(path);
    EXPECT_EQ(stats.records, 1000u);
    EXPECT_EQ(stats.blocks, 8u);
}

TEST(BvtRoundTrip, EmptyTraceIsValid)
{
    const std::string path = tempPath("empty.bvt");
    BvtTraceMeta meta;
    {
        BvtWriter writer(path, meta);
        writer.finish();
    }
    const BvtVerifyStats stats = verifyBvt(path);
    EXPECT_EQ(stats.records, 0u);
    EXPECT_EQ(stats.blocks, 0u);

    FileTraceOptions opts;
    opts.decodeAhead = false;
    FileTraceSource source(path, opts);
    TraceRecord r;
    EXPECT_FALSE(source.next(r));
}

TEST(BvtCorruption, MissingFile)
{
    try {
        (void)readBvtHeader(tempPath("nonexistent.bvt"));
        FAIL() << "expected BvcError{Io}";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
    }
}

TEST(BvtCorruption, TruncatedHeader)
{
    const std::string path = writeUnitTrace("trunc_header.bvt", 300);
    std::vector<std::uint8_t> data = readAll(path);
    data.resize(20); // mid-header
    writeAll(path, data);
    expectIoErrorWithOffset([&] { (void)readBvtHeader(path); });
    expectIoErrorWithOffset([&] { BvtReader reader(path); });
}

TEST(BvtCorruption, TornFinalBlock)
{
    const std::string path = writeUnitTrace("torn_tail.bvt", 1000);
    std::vector<std::uint8_t> data = readAll(path);
    data.resize(data.size() - 7); // cut the last block's payload
    writeAll(path, data);
    // Header still reads fine; the walk dies at the torn tail.
    EXPECT_EQ(readBvtHeader(path).recordCount, 1000u);
    expectIoErrorWithOffset([&] { (void)verifyBvt(path); });
}

TEST(BvtCorruption, BitFlippedPayload)
{
    const std::string path = writeUnitTrace("bitflip.bvt", 1000);
    std::vector<std::uint8_t> data = readAll(path);
    const std::uint32_t headerBytes = readBvtHeader(path).headerBytes;
    // Flip one bit in the middle of the first block's payload.
    data.at(headerBytes + kBvtBlockFrameBytes + 5) ^= 0x10;
    writeAll(path, data);
    try {
        (void)verifyBvt(path);
        FAIL() << "expected BvcError{Io}";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
            << e.what();
    }
}

TEST(BvtCorruption, VersionFromTheFuture)
{
    const std::string path = writeUnitTrace("future.bvt", 300);
    std::vector<std::uint8_t> data = readAll(path);
    data[4] = 99; // version field (little-endian u32 at offset 4)
    // A future writer would also restamp the header CRC; do the same
    // so the version check (not the CRC check) is what fires.
    const std::uint32_t headerBytes = readBvtHeader(path).headerBytes;
    std::uint32_t crc = crc32(data.data(), headerBytes - 4);
    for (unsigned i = 0; i < 4; ++i)
        data[headerBytes - 4 + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    writeAll(path, data);
    try {
        (void)readBvtHeader(path);
        FAIL() << "expected BvcError{Io}";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("unsupported version"),
                  std::string::npos)
            << e.what();
    }
}

TEST(BvtCorruption, BadMagic)
{
    const std::string path = writeUnitTrace("magic.bvt", 300);
    std::vector<std::uint8_t> data = readAll(path);
    data[0] = 'X';
    writeAll(path, data);
    expectIoErrorWithOffset([&] { (void)readBvtHeader(path); });
}

TEST(BvtCorruption, HeaderCrcMismatch)
{
    const std::string path = writeUnitTrace("header_crc.bvt", 300);
    std::vector<std::uint8_t> data = readAll(path);
    data[48] ^= 0x01; // patternSeed byte; CRC no longer matches
    writeAll(path, data);
    expectIoErrorWithOffset([&] { (void)readBvtHeader(path); });
}

TEST(FileTraceSource, MatchesGeneratorStream)
{
    const std::string path = writeUnitTrace("match.bvt", 2000);
    SyntheticTrace generator(testParams());
    FileTraceOptions opts;
    opts.decodeAhead = false;
    FileTraceSource file(path, opts);
    TraceRecord fromGen, fromFile;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(generator.next(fromGen));
        ASSERT_TRUE(file.next(fromFile));
        ASSERT_EQ(fromFile.pc, fromGen.pc);
        ASSERT_EQ(fromFile.addr, fromGen.addr);
        ASSERT_EQ(fromFile.value, fromGen.value);
        ASSERT_EQ(fromFile.kind, fromGen.kind);
        ASSERT_EQ(fromFile.dependsOnPrevLoad,
                  fromGen.dependsOnPrevLoad);
    }
    EXPECT_FALSE(file.next(fromFile)); // finite: exhausts at 2000
}

TEST(FileTraceSource, DecodeAheadIsByteIdenticalToSync)
{
    const std::string path = writeUnitTrace("ahead.bvt", 3000, 64);
    FileTraceOptions sync;
    sync.decodeAhead = false;
    FileTraceOptions ahead;
    ahead.decodeAhead = true;
    ahead.aheadBlocks = 2;
    FileTraceSource a(path, sync), b(path, ahead);
    TraceRecord ra, rb;
    for (int i = 0; i < 3000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.value, rb.value);
        ASSERT_EQ(ra.kind, rb.kind);
        ASSERT_EQ(ra.dependsOnPrevLoad, rb.dependsOnPrevLoad);
    }
    EXPECT_FALSE(a.next(ra));
    EXPECT_FALSE(b.next(rb));
}

TEST(FileTraceSource, DecodeAheadSurfacesCorruptionAsIoError)
{
    const std::string path = writeUnitTrace("ahead_corrupt.bvt",
                                            2000, 64);
    std::vector<std::uint8_t> data = readAll(path);
    data.resize(data.size() - 5); // torn tail
    writeAll(path, data);
    FileTraceOptions opts;
    opts.decodeAhead = true;
    FileTraceSource source(path, opts);
    TraceRecord r;
    expectIoErrorWithOffset([&] {
        while (source.next(r)) {
        }
    });
}

TEST(FileTraceSource, LoopReplayRestartsAtTheFirstRecord)
{
    const std::string path = writeUnitTrace("loop.bvt", 500, 64);
    FileTraceOptions opts;
    opts.decodeAhead = false;
    opts.loopReplay = true;
    FileTraceSource looped(path, opts);
    FileTraceOptions once;
    once.decodeAhead = false;
    FileTraceSource plain(path, once);
    std::vector<TraceRecord> first;
    TraceRecord r;
    while (plain.next(r))
        first.push_back(r);
    ASSERT_EQ(first.size(), 500u);
    for (int lap = 0; lap < 3; ++lap) {
        for (const TraceRecord &want : first) {
            ASSERT_TRUE(looped.next(r));
            ASSERT_EQ(r.pc, want.pc);
            ASSERT_EQ(r.addr, want.addr);
        }
    }
}

TEST(FileTraceSource, AddressOffsetShiftsPcAndMemAddresses)
{
    const std::string path = writeUnitTrace("offset.bvt", 300, 64);
    FileTraceOptions plain;
    plain.decodeAhead = false;
    FileTraceOptions shifted = plain;
    shifted.addressOffset = Addr{1} << 42;
    FileTraceSource a(path, plain), b(path, shifted);
    TraceRecord ra, rb;
    for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(rb.pc, ra.pc + (Addr{1} << 42));
        if (ra.kind != InstrKind::NonMem)
            ASSERT_EQ(rb.addr, ra.addr + (Addr{1} << 42));
        else
            ASSERT_EQ(rb.addr, ra.addr);
    }
}

TEST(Convert, ParsesEveryLineForm)
{
    TraceRecord r;
    EXPECT_FALSE(parseTraceLine("", 1, r));
    EXPECT_FALSE(parseTraceLine("   # only a comment", 1, r));

    ASSERT_TRUE(parseTraceLine("0x1000 N", 1, r));
    EXPECT_EQ(r.pc, 0x1000u);
    EXPECT_EQ(r.kind, InstrKind::NonMem);

    ASSERT_TRUE(parseTraceLine("4096, L, 8192", 1, r));
    EXPECT_EQ(r.pc, 4096u);
    EXPECT_EQ(r.addr, 8192u);
    EXPECT_EQ(r.kind, InstrKind::Load);
    EXPECT_FALSE(r.dependsOnPrevLoad);

    ASSERT_TRUE(parseTraceLine("0x10 LD 0x20 # chase", 1, r));
    EXPECT_TRUE(r.dependsOnPrevLoad);

    ASSERT_TRUE(parseTraceLine("0x10 S 0x20 0xdead", 1, r));
    EXPECT_EQ(r.kind, InstrKind::Store);
    EXPECT_EQ(r.value, 0xdeadu);

    ASSERT_TRUE(parseTraceLine("0x10 store 0x20", 1, r));
    EXPECT_EQ(r.value, 0u); // value optional
}

TEST(Convert, RejectsMalformedLinesWithLineNumbers)
{
    const char *bad[] = {
        "0x10",             // op missing
        "0x10 X 0x20",      // unknown op
        "0x10 L",           // address missing
        "zz L 0x20",        // bad pc
        "0x10 L 0x20 7",    // trailing field on a load
        "0x10 N extra",     // trailing field on a nonmem
        "-5 N",             // negative pc
    };
    TraceRecord r;
    for (const char *line : bad) {
        try {
            (void)parseTraceLine(line, 42, r);
            FAIL() << "expected BvcError{Trace} for: " << line;
        } catch (const BvcError &e) {
            EXPECT_EQ(e.category(), ErrorCategory::Trace) << line;
            EXPECT_NE(std::string(e.what()).find("line 42"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Convert, TextFileRoundTrips)
{
    const std::string inPath = tempPath("convert_in.txt");
    {
        std::ofstream out(inPath);
        out << "# header comment\n"
            << "0x1000 N\n"
            << "0x1004 L 0x20000\n"
            << "0x1008 S 0x20040 123\n"
            << "\n"
            << "0x100c LD 0x20080\n";
    }
    const std::string outPath = tempPath("convert_out.bvt");
    BvtTraceMeta meta;
    meta.name = "converted";
    const ConvertStats stats =
        convertTextTrace(inPath, outPath, meta, 2);
    EXPECT_EQ(stats.records, 4u);

    FileTraceOptions opts;
    opts.decodeAhead = false;
    FileTraceSource source(outPath, opts);
    TraceRecord r;
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.kind, InstrKind::NonMem);
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.addr, 0x20000u);
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.value, 123u);
    ASSERT_TRUE(source.next(r));
    EXPECT_TRUE(r.dependsOnPrevLoad);
    EXPECT_FALSE(source.next(r));
}

TEST(TraceParamsFromBvt, CarriesHeaderMetadata)
{
    const std::string path = writeUnitTrace("params.bvt", 300);
    const TraceParams params = traceParamsFromBvt(path);
    EXPECT_EQ(params.name, "unit");
    EXPECT_EQ(params.filePath, path);
    EXPECT_EQ(params.seed, testParams().seed);
}

/**
 * The acceptance criterion end to end: a generator run and a replay
 * of that generator's exported .bvt produce IDENTICAL stats —
 * addresses, values and the DataPattern all survive the round trip.
 */
TEST(EndToEnd, FileReplayReproducesGeneratorStats)
{
    const std::string path = writeUnitTrace("e2e.bvt", 30'000, 512);

    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    ExperimentOptions opts;
    opts.warmup = 5'000;
    opts.measure = 15'000;

    const RunResult fromGen = runTrace(cfg, testParams(), opts);
    const RunResult fromFile =
        runTrace(cfg, traceParamsFromBvt(path), opts);

    EXPECT_EQ(fromFile.instructions, fromGen.instructions);
    EXPECT_EQ(fromFile.cycles, fromGen.cycles);
    EXPECT_EQ(fromFile.llcDemandHits, fromGen.llcDemandHits);
    EXPECT_EQ(fromFile.llcDemandMisses, fromGen.llcDemandMisses);
    EXPECT_EQ(fromFile.llcVictimHits, fromGen.llcVictimHits);
    EXPECT_EQ(fromFile.dramReads, fromGen.dramReads);
    EXPECT_EQ(fromFile.dramWrites, fromGen.dramWrites);

    // And the decode-ahead path changes nothing.
    ExperimentOptions syncOpts = opts;
    syncOpts.decodeAhead = false;
    const RunResult fromSync =
        runTrace(cfg, traceParamsFromBvt(path), syncOpts);
    EXPECT_EQ(fromSync.cycles, fromFile.cycles);
    EXPECT_EQ(fromSync.llcDemandMisses, fromFile.llcDemandMisses);
}

} // namespace
} // namespace bvc
