/**
 * @file
 * Pins the BankedLlc locking contract the thread-safety annotations
 * now enforce at compile time (core/banked_llc.hh): disjoint banks may
 * be driven from distinct host threads concurrently, and the
 * aggregation paths — stats(), validLines(), name() — take each bank's
 * lock, so a measurement thread can run against in-flight accesses
 * without tearing a bank's counters. Before this contract was
 * machine-checked, rebuildAggregate() and name() read bank state with
 * no lock at all; this test races them against writers and is part of
 * the TSan CI job's regex, where the unlocked code fails.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "compress/factory.hh"
#include "core/banked_llc.hh"
#include "sim/system.hh"
#include "trace/data_patterns.hh"

namespace bvc
{
namespace
{

/**
 * Byte stride between adjacent banks: bankOf flips from 0 to 1 at
 * 1 << bankShift, so probing powers of two recovers the shift without
 * widening the BankedLlc API.
 */
Addr
bankStride(const BankedLlc &banked)
{
    Addr stride = kLineBytes;
    while (banked.bankOf(stride) == 0)
        stride <<= 1;
    return stride;
}

/**
 * The i-th distinct block address served by bank `b`: walk the bank's
 * own stripe line by line, then jump a full bank rotation so the bank
 * bits are untouched.
 */
Addr
bankLocalBlock(const BankedLlc &banked, Addr stride, std::size_t b,
               std::size_t i)
{
    const std::size_t linesPerStripe = stride / kLineBytes;
    const Addr rotation = stride * banked.numBanks();
    return static_cast<Addr>(b) * stride +
           static_cast<Addr>(i % linesPerStripe) * kLineBytes +
           static_cast<Addr>(i / linesPerStripe) * rotation;
}

TEST(BankedThreads, DisjointBankWritersRaceAggregationSafely)
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    cfg.llcBanks = 4;
    const auto comp = makeCompressor(cfg.compressor);
    const auto llc = makeLlc(cfg, *comp);
    auto *banked = dynamic_cast<BankedLlc *>(llc.get());
    ASSERT_NE(banked, nullptr);
    ASSERT_EQ(banked->numBanks(), 4u);
    const Addr stride = bankStride(*banked);

    constexpr std::size_t kAccessesPerThread = 4000;
    std::atomic<bool> start{false};
    std::atomic<bool> done{false};

    // One writer per bank, each touching ONLY addresses its bank
    // serves — the documented disjoint-banks contract.
    std::vector<std::thread> writers;
    for (std::size_t b = 0; b < banked->numBanks(); ++b) {
        writers.emplace_back([&, b] {
            const DataPattern pattern(DataPatternKind::MixedGood,
                                      17 + b);
            std::uint8_t line[kLineBytes];
            while (!start.load(std::memory_order_acquire)) {
            }
            for (std::size_t i = 0; i < kAccessesPerThread; ++i) {
                const Addr blk =
                    bankLocalBlock(*banked, stride, b, i * 3);
                ASSERT_EQ(banked->bankOf(blk), b);
                pattern.fillLine(blk, line);
                (void)llc->access(blk,
                                  (i & 7) == 0 ? AccessType::Prefetch
                                               : AccessType::Read,
                                  line);
            }
        });
    }

    // The measurement thread hammers the aggregation paths the whole
    // time the writers run. Every read below takes per-bank locks
    // internally; under TSan this is the regression test for the
    // previously unlocked rebuildAggregate()/name() reads.
    std::thread reader([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        std::uint64_t sink = 0;
        while (!done.load(std::memory_order_acquire)) {
            sink += llc->stats().get("accesses");
            sink += llc->validLines();
            sink += llc->name().size();
        }
        EXPECT_GT(sink, 0u);
    });

    start.store(true, std::memory_order_release);
    for (std::thread &t : writers)
        t.join();
    done.store(true, std::memory_order_release);
    reader.join();

    // Every access must have landed exactly once in some bank.
    EXPECT_EQ(llc->stats().get("accesses"),
              static_cast<std::uint64_t>(banked->numBanks()) *
                  kAccessesPerThread);
}

TEST(BankedThreads, AggregateMatchesPerBankSumAfterTheRace)
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::Uncompressed;
    cfg.llcBanks = 2;
    const auto comp = makeCompressor(cfg.compressor);
    const auto llc = makeLlc(cfg, *comp);
    auto *banked = dynamic_cast<BankedLlc *>(llc.get());
    ASSERT_NE(banked, nullptr);
    const Addr stride = bankStride(*banked);

    constexpr std::size_t kAccessesPerThread = 2000;
    std::vector<std::thread> writers;
    for (std::size_t b = 0; b < banked->numBanks(); ++b) {
        writers.emplace_back([&, b] {
            const DataPattern pattern(DataPatternKind::Zeros, 5);
            std::uint8_t line[kLineBytes];
            for (std::size_t i = 0; i < kAccessesPerThread; ++i) {
                const Addr blk =
                    bankLocalBlock(*banked, stride, b, i);
                pattern.fillLine(blk, line);
                (void)llc->access(blk, AccessType::Read, line);
            }
        });
    }
    for (std::thread &t : writers)
        t.join();

    std::uint64_t perBank = 0;
    for (std::size_t b = 0; b < banked->numBanks(); ++b)
        perBank += banked->bank(b).stats().get("accesses");
    EXPECT_EQ(llc->stats().get("accesses"), perBank);
    EXPECT_EQ(perBank, static_cast<std::uint64_t>(
                           banked->numBanks()) *
                           kAccessesPerThread);
}

} // namespace
} // namespace bvc
