/** @file Unit tests for stats, histogram and table utilities. */

#include <gtest/gtest.h>

#include "util/histogram.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace bvc
{
namespace
{

TEST(StatGroup, CounterStartsAtZero)
{
    StatGroup group("g");
    EXPECT_EQ(group.get("x"), 0u);
    EXPECT_EQ(group.counter("x").value(), 0u);
}

TEST(StatGroup, IncrementAndAdd)
{
    StatGroup group("g");
    ++group.counter("hits");
    group.counter("hits") += 4;
    EXPECT_EQ(group.get("hits"), 5u);
}

TEST(StatGroup, SameNameSameCounter)
{
    StatGroup group("g");
    ++group.counter("a");
    ++group.counter("a");
    EXPECT_EQ(group.get("a"), 2u);
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup group("g");
    group.counter("a") += 3;
    group.counter("b") += 9;
    group.resetAll();
    EXPECT_EQ(group.get("a"), 0u);
    EXPECT_EQ(group.get("b"), 0u);
}

TEST(StatGroup, DumpContainsNameAndValues)
{
    StatGroup group("llc");
    group.counter("misses") += 7;
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("llc.misses 7"), std::string::npos);
}

TEST(StatGroup, NamesSorted)
{
    StatGroup group("g");
    group.counter("zebra");
    group.counter("apple");
    const auto names = group.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "apple");
    EXPECT_EQ(names[1], "zebra");
}

TEST(Histogram, MeanOfSamples)
{
    Histogram h(10);
    h.add(2);
    h.add(4);
    h.add(6);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(4);
    h.add(100);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(16);
    for (std::uint64_t v = 0; v < 10; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 4u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Histogram, DumpSkipsEmptyBuckets)
{
    Histogram h(8);
    h.add(1);
    h.add(1);
    h.add(5);
    EXPECT_EQ(h.dump(), "1:2 5:1");
}

TEST(Table, RendersAlignedColumns)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 3), "2.000");
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace bvc
