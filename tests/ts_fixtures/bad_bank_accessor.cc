// Thread-safety fixture: good_bank_accessor.cc with the locking
// contract broken. Compiling this with -Wthread-safety
// -Werror=thread-safety must FAIL twice over: `bankModel` (the
// accessor with its BVC_REQUIRES stripped) dereferences the
// BVC_PT_GUARDED_BY bank pointer without the capability, and
// `probeOneBank` calls the still-annotated `bankModelLocked` without
// holding the bank lock. tests/CMakeLists.txt registers this as a
// WILL_FAIL compile test, so the analysis losing both detections
// breaks the suite.

#include "core/banked_llc.hh"

namespace
{

// The accessor, minus its BVC_REQUIRES(bank.mutex).
bvc::Llc &
bankModel(bvc::BankedLlc::Bank &bank)
{
    return *bank.llc;
}

bvc::Llc &
bankModelLocked(bvc::BankedLlc::Bank &bank) BVC_REQUIRES(bank.mutex)
{
    return *bank.llc;
}

bool
probeOneBank(bvc::BankedLlc::Bank &bank, bvc::Addr blk)
{
    // No MutexLock: both calls below violate the contract.
    return bankModel(bank).probe(blk) ||
           bankModelLocked(bank).probe(blk);
}

} // namespace

int
main()
{
    (void)&probeOneBank;
    return 0;
}
