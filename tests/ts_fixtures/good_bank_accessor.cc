// Thread-safety fixture (compiled with -fsyntax-only -Wthread-safety
// -Werror=thread-safety under BVC_THREAD_SAFETY): the annotated
// BankedLlc bank-accessor contract, stated the way the private
// BankedLlc::lockedBank accessor states it. Must compile CLEAN — the
// BVC_REQUIRES names the per-bank capability and the caller holds it
// via MutexLock for the duration of the dereference.
//
// Its twin bad_bank_accessor.cc is this file with the BVC_REQUIRES
// removed, and must FAIL (tests/CMakeLists.txt, WILL_FAIL).

#include "core/banked_llc.hh"

namespace
{

bvc::Llc &
bankModel(bvc::BankedLlc::Bank &bank) BVC_REQUIRES(bank.mutex)
{
    return *bank.llc;
}

bool
probeOneBank(bvc::BankedLlc::Bank &bank, bvc::Addr blk)
{
    bvc::MutexLock lock(bank.mutex);
    return bankModel(bank).probe(blk);
}

} // namespace

int
main()
{
    (void)&probeOneBank;
    return 0;
}
