/**
 * @file
 * The parallel sweep engine's contract (src/runner/): every submitted
 * job runs exactly once, results come back in submission order no
 * matter how workers interleave, parallel compareOnSuite is
 * bit-identical to the serial path, a throwing job surfaces its error
 * without deadlocking the pool, the JSON report round-trips, and the
 * hardened option parsing rejects garbage instead of silently running
 * zero-length windows.
 */

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runner/report.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "trace/workload_suite.hh"
#include "util/error.hh"
#include "util/json.hh"

using namespace bvc;

namespace
{

/** Scoped setenv/unsetenv so env-dependent tests can't leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

SweepJob
fnJob(const std::string &label, std::function<RunResult()> fn)
{
    SweepJob job;
    job.label = label;
    job.trace.name = "synthetic/" + label;
    job.fn = std::move(fn);
    return job;
}

} // namespace

// Death tests run first, before any worker threads have been spawned,
// so gtest's fork-based "fast" style is safe.
TEST(ExperimentOptionsDeath, RejectsMalformedEnv)
{
    ScopedEnv env("BVC_INSTR", "abc");
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "BVC_INSTR");
}

TEST(ExperimentOptionsDeath, RejectsZeroEnv)
{
    ScopedEnv env("BVC_WARMUP", "0");
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "BVC_WARMUP");
}

TEST(ExperimentOptionsDeath, RejectsNegativeValues)
{
    // strtoull would silently wrap "-3" to a huge unsigned value.
    ScopedEnv env("BVC_THREADS", "-3");
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "BVC_THREADS");
}

TEST(ExperimentOptionsDeath, RejectsTrailingJunk)
{
    ScopedEnv env("BVC_INSTR", "1000x");
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "BVC_INSTR");
}

TEST(ExperimentOptions, ReadsValidEnv)
{
    ScopedEnv warmup("BVC_WARMUP", "1234");
    ScopedEnv instr("BVC_INSTR", "5678");
    ScopedEnv threads("BVC_THREADS", "3");
    const ExperimentOptions opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.warmup, 1234u);
    EXPECT_EQ(opts.measure, 5678u);
    EXPECT_EQ(opts.threads, 3u);
}

TEST(ResolveThreadCount, RequestWinsThenEnvThenHardware)
{
    EXPECT_EQ(resolveThreadCount(5), 5u);
    {
        ScopedEnv env("BVC_THREADS", "7");
        EXPECT_EQ(resolveThreadCount(0), 7u);
        EXPECT_EQ(resolveThreadCount(2), 2u);
    }
    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    constexpr std::size_t kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    std::atomic<std::size_t> total{0};
    {
        ThreadPool pool(4);
        for (std::size_t i = 0; i < kTasks; ++i)
            pool.submit([&runs, &total, i] {
                runs[i].fetch_add(1);
                total.fetch_add(1);
            });
        pool.wait();
        EXPECT_EQ(total.load(), kTasks);
    }
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<std::size_t> total{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&total] { total.fetch_add(1); });
        // No wait(): the destructor must finish the queued work.
    }
    EXPECT_EQ(total.load(), 50u);
}

TEST(SweepEngine, ResultsComeBackInSubmissionOrder)
{
    constexpr std::size_t kJobs = 64;
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs.push_back(fnJob("job" + std::to_string(i), [i] {
            RunResult r;
            r.instructions = i;
            r.ipc = 1.0 + static_cast<double>(i);
            return r;
        }));

    SweepOptions opts;
    opts.threads = 8;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].label, "job" + std::to_string(i));
        EXPECT_TRUE(results[i].ok);
        EXPECT_EQ(results[i].result.instructions, i);
    }
    const SweepTelemetry &t = engine.lastTelemetry();
    EXPECT_EQ(t.jobs, kJobs);
    EXPECT_EQ(t.threads, 8u);
    EXPECT_GT(t.wallSeconds, 0.0);
}

TEST(SweepEngine, ThrowingJobIsCapturedWithoutDeadlock)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("good0", [] { return RunResult{}; }));
    jobs.push_back(fnJob("bad", []() -> RunResult {
        throw std::runtime_error("simulated job failure");
    }));
    jobs.push_back(fnJob("good1", [] { return RunResult{}; }));

    SweepOptions opts;
    opts.threads = 3;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("simulated job failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
}

TEST(SweepEngineDeath, FailOnJobErrorsReportsConfigAndError)
{
    std::vector<JobResult> results(1);
    results[0].index = 0;
    results[0].label = "base-victim";
    results[0].trace = "SPECFP/milc.0";
    results[0].ok = false;
    results[0].error = "simulated job failure";
    EXPECT_EXIT(failOnJobErrors(results),
                ::testing::ExitedWithCode(1),
                "base-victim.*SPECFP/milc.0.*simulated job failure");
}

TEST(SweepEngine, EmptyJobListIsANoOp)
{
    SweepEngine engine;
    EXPECT_TRUE(engine.run({}).empty());
    EXPECT_EQ(engine.lastTelemetry().jobs, 0u);
}

/** The determinism guarantee: parallel == serial, bit for bit. */
TEST(SweepEngine, ParallelCompareOnSuiteMatchesSerial)
{
    const WorkloadSuite suite(512 * 1024);
    std::vector<std::size_t> indices = suite.sensitiveIndices();
    ASSERT_GE(indices.size(), 3u);
    indices.resize(3);

    SystemConfig base = SystemConfig::benchDefaults();
    SystemConfig test = base;
    test.arch = LlcArch::BaseVictim;

    ExperimentOptions opts;
    opts.warmup = 2'000;
    opts.measure = 6'000;

    opts.threads = 1;
    const auto serial =
        compareOnSuite(base, test, suite, indices, opts);
    opts.threads = 4;
    const auto parallel =
        compareOnSuite(base, test, suite, indices, opts);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        // Exact equality on purpose: each job is a self-contained
        // simulation, so thread count must not perturb a single bit.
        EXPECT_EQ(serial[i].ipcRatio, parallel[i].ipcRatio);
        EXPECT_EQ(serial[i].dramReadRatio, parallel[i].dramReadRatio);
        EXPECT_EQ(serial[i].base.cycles, parallel[i].base.cycles);
        EXPECT_EQ(serial[i].test.cycles, parallel[i].test.cycles);
        EXPECT_EQ(serial[i].base.dramReads, parallel[i].base.dramReads);
        EXPECT_EQ(serial[i].test.llcDemandMisses,
                  parallel[i].test.llcDemandMisses);
        EXPECT_GT(serial[i].baseSeconds, 0.0);
        EXPECT_GT(parallel[i].testSeconds, 0.0);
    }
}

TEST(Report, JsonRoundTripsKeyFields)
{
    SweepReport report;
    report.tool = "test";
    report.threads = 8;
    report.wallSeconds = 12.25;
    report.jobsPerSecond = 3.5;

    RunRecord a;
    a.index = 0;
    a.arch = "base-victim";
    a.trace = "SPECFP/milc.0";
    a.category = "SPECFP";
    a.bucket = "compression-friendly";
    a.wallSeconds = 0.125;
    a.warmup = 200'000;
    a.measure = 400'000;
    a.result.ipc = 1.2345678901234567;
    a.result.instructions = 400'000;
    a.result.cycles = 324'001;
    a.result.dramReads = 1001;
    a.result.dramWrites = 77;
    a.result.llcDemandMisses = 1234;
    a.result.llcVictimHits = 55;
    a.result.backInvalidations = 3;
    a.hasRatios = true;
    a.ipcRatio = 1.0731;
    a.dramReadRatio = 0.84;

    RunRecord b;
    b.index = 1;
    b.arch = "vsc";
    b.trace = "CLIENT/tpch.2";
    b.category = "Client";
    b.ok = false;
    b.error = "weird \"quoted\" error\nwith a newline \\ backslash";

    report.records = {a, b};

    const SweepReport parsed = parseJsonReport(toJson(report));
    EXPECT_EQ(parsed.schema, "bvc-sweep-v1");
    EXPECT_EQ(parsed.tool, "test");
    EXPECT_EQ(parsed.threads, 8u);
    EXPECT_EQ(parsed.wallSeconds, 12.25);
    EXPECT_EQ(parsed.jobsPerSecond, 3.5);
    ASSERT_EQ(parsed.records.size(), 2u);

    const RunRecord &pa = parsed.records[0];
    EXPECT_EQ(pa.arch, "base-victim");
    EXPECT_EQ(pa.trace, "SPECFP/milc.0");
    EXPECT_EQ(pa.category, "SPECFP");
    EXPECT_EQ(pa.bucket, "compression-friendly");
    EXPECT_TRUE(pa.ok);
    EXPECT_EQ(pa.wallSeconds, 0.125);
    EXPECT_EQ(pa.warmup, 200'000u);
    EXPECT_EQ(pa.measure, 400'000u);
    EXPECT_EQ(pa.result.ipc, a.result.ipc); // %.17g is bit-exact
    EXPECT_EQ(pa.result.instructions, 400'000u);
    EXPECT_EQ(pa.result.cycles, 324'001u);
    EXPECT_EQ(pa.result.dramReads, 1001u);
    EXPECT_EQ(pa.result.llcVictimHits, 55u);
    EXPECT_TRUE(pa.hasRatios);
    EXPECT_EQ(pa.ipcRatio, 1.0731);
    EXPECT_EQ(pa.dramReadRatio, 0.84);

    const RunRecord &pb = parsed.records[1];
    EXPECT_FALSE(pb.ok);
    EXPECT_EQ(pb.error, b.error);
}

TEST(Report, JsonEncodesNonFiniteMetricsAsNull)
{
    SweepReport report;
    report.tool = "test";
    RunRecord rec;
    rec.result.ipc = std::numeric_limits<double>::quiet_NaN();
    rec.hasRatios = true;
    rec.ipcRatio = std::numeric_limits<double>::infinity();
    rec.dramReadRatio = 0.5;
    report.records = {rec};

    // Bare nan/inf tokens are not valid JSON; the writer must emit
    // null and the reader must accept it back as NaN.
    const std::string json = toJson(report);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_NE(json.find("null"), std::string::npos);

    const SweepReport parsed = parseJsonReport(json);
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_TRUE(std::isnan(parsed.records[0].result.ipc));
    EXPECT_TRUE(std::isnan(parsed.records[0].ipcRatio));
    EXPECT_EQ(parsed.records[0].dramReadRatio, 0.5);
}

TEST(Report, JsonPreservesCountersAbove53Bits)
{
    SweepReport report;
    report.tool = "test";
    RunRecord rec;
    // (2^53)+1 is the first integer a double cannot represent; a
    // parser that routes counters through double corrupts all three.
    rec.result.instructions = (std::uint64_t{1} << 53) + 1;
    rec.result.cycles = std::numeric_limits<std::uint64_t>::max();
    rec.result.dramReads = (std::uint64_t{1} << 63) + 12345;
    report.records = {rec};

    const SweepReport parsed = parseJsonReport(toJson(report));
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].result.instructions,
              (std::uint64_t{1} << 53) + 1);
    EXPECT_EQ(parsed.records[0].result.cycles,
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(parsed.records[0].result.dramReads,
              (std::uint64_t{1} << 63) + 12345);
}

TEST(Report, BuildReportCarriesJobIdentity)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("base-victim", [] {
        RunResult r;
        r.ipc = 2.0;
        return r;
    }));
    jobs[0].trace.category = WorkloadCategory::Productivity;
    jobs[0].opts.warmup = 11;
    jobs[0].opts.measure = 22;

    SweepEngine engine;
    const auto results = engine.run(jobs);
    const SweepReport report =
        buildReport("unit", engine.lastTelemetry(), jobs, results);

    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.tool, "unit");
    EXPECT_EQ(report.records[0].arch, "base-victim");
    EXPECT_EQ(report.records[0].category, "Productivity");
    EXPECT_EQ(report.records[0].warmup, 11u);
    EXPECT_EQ(report.records[0].measure, 22u);
    EXPECT_EQ(report.records[0].result.ipc, 2.0);
    EXPECT_GT(report.records[0].wallSeconds, 0.0);
}

TEST(Report, CsvHasHeaderAndOneRowPerRecord)
{
    SweepReport report;
    RunRecord rec;
    rec.arch = "dcc";
    rec.trace = "SPECINT/mcf.1";
    rec.error = "contains, comma and \"quote\"";
    report.records = {rec, rec};

    const std::string csv = toCsv(report);
    std::size_t lines = 0;
    for (const char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u); // header + 2 records
    EXPECT_NE(csv.find("index,arch,trace,category,bucket,ok,error"),
              std::string::npos);
    EXPECT_NE(csv.find("\"contains, comma and \"\"quote\"\"\""),
              std::string::npos);
}

TEST(Report, ErrorCategoryAndAttemptsRoundTrip)
{
    SweepReport report;
    report.tool = "test";
    RunRecord rec;
    rec.ok = false;
    rec.error = "job exceeded its wall-clock budget";
    rec.errorCategory = ErrorCategory::Timeout;
    rec.attempts = 3;
    report.records = {rec};

    const std::string json = toJson(report);
    EXPECT_NE(json.find("\"error_category\": \"timeout\""),
              std::string::npos);
    const SweepReport parsed = parseJsonReport(json);
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].errorCategory, ErrorCategory::Timeout);
    EXPECT_EQ(parsed.records[0].attempts, 3u);
}

TEST(Report, TruncatedJsonIsRejectedWithByteOffset)
{
    SweepReport report;
    report.tool = "test";
    report.records = {RunRecord{}};
    const std::string json = toJson(report);

    try {
        (void)parseJsonReport(json.substr(0, json.size() / 2));
        FAIL() << "truncated JSON was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

TEST(Report, TrailingGarbageIsRejected)
{
    SweepReport report;
    report.tool = "test";
    const std::string json = toJson(report);
    EXPECT_THROW(parseJsonReport(json + " {\"extra\": 1}"), BvcError);
}

TEST(Json, BadUnicodeEscapeIsRejected)
{
    // strtoul alone would decode "\uZZZZ" to 0 and embed a NUL; every
    // one of the four characters must be a hex digit.
    for (const std::string bad :
         {"\"\\uZZZZ\"", "\"\\u12G4\"", "\"\\u +12\"", "\"\\u-123\"",
          "\"\\u123\""}) {
        JsonReader reader(bad);
        EXPECT_THROW(reader.parseString(), BvcError) << bad;
    }

    JsonReader good("\"\\u0041\\u0009\"");
    EXPECT_EQ(good.parseString(), "A\t");
}

TEST(Report, WrongSchemaIsRejected)
{
    SweepReport report;
    report.tool = "test";
    std::string json = toJson(report);
    const std::size_t pos = json.find("bvc-sweep-v1");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, 12, "bvc-sweep-v9");
    try {
        (void)parseJsonReport(json);
        FAIL() << "wrong schema was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("bvc-sweep-v9"),
                  std::string::npos);
    }
}

TEST(Report, ZeroTimingsNormalizesEveryWallClockField)
{
    SweepReport report;
    report.wallSeconds = 12.5;
    report.jobsPerSecond = 3.5;
    RunRecord rec;
    rec.wallSeconds = 0.25;
    report.records = {rec, rec};

    zeroTimings(report);
    EXPECT_EQ(report.wallSeconds, 0.0);
    EXPECT_EQ(report.jobsPerSecond, 0.0);
    for (const RunRecord &r : report.records)
        EXPECT_EQ(r.wallSeconds, 0.0);
}

TEST(Report, WriteFileAtomicReplacesContentWithoutDroppings)
{
    const std::string path =
        ::testing::TempDir() + "bvc_atomic_write.txt";
    writeFileAtomic(path, "first");
    EXPECT_EQ(readFile(path), "first");
    writeFileAtomic(path, "second");
    EXPECT_EQ(readFile(path), "second");
    // The staging file must not survive a successful rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}
