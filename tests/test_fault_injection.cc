/**
 * @file
 * Fault-tolerance contract of the sweep harness (src/runner/,
 * src/util/fault.hh, docs/robustness.md): the BVC_FAULT grammar
 * parses and rejects what the docs say, injected throws are retried
 * with deterministic backoff and keep their structured category, the
 * watchdog classifies stalled jobs as timeouts without killing the
 * campaign, the crash-safe journal round-trips results and rejects
 * corruption, and a campaign killed at a checkpoint boundary resumes
 * into a byte-identical report.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/journal.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "util/error.hh"
#include "util/fault.hh"

using namespace bvc;

namespace
{

/** Scoped setenv/unsetenv so env-dependent tests can't leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

SweepJob
fnJob(const std::string &label, std::function<RunResult()> fn)
{
    SweepJob job;
    job.label = label;
    job.trace.name = "synthetic/" + label;
    job.fn = std::move(fn);
    return job;
}

/** A six-job campaign with distinct, deterministic metrics per job. */
std::vector<SweepJob>
campaign(std::atomic<std::size_t> *executed = nullptr)
{
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < 6; ++i)
        jobs.push_back(
            fnJob("job" + std::to_string(i), [i, executed] {
                if (executed != nullptr)
                    executed->fetch_add(1);
                RunResult r;
                r.instructions = 1000 + i;
                r.cycles = 2000 + 3 * i;
                r.ipc = 0.5 + 0.125 * static_cast<double>(i);
                r.dramReads = 10 * i;
                return r;
            }));
    return jobs;
}

/** Stable JSON (timings zeroed) of a finished campaign. */
std::string
stableJson(const std::string &tool, const SweepEngine &engine,
           const std::vector<SweepJob> &jobs,
           const std::vector<JobResult> &results)
{
    SweepReport report =
        buildReport(tool, engine.lastTelemetry(), jobs, results);
    zeroTimings(report);
    return toJson(report);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "bvc_fault_" + name;
}

} // namespace

// Death tests come first: gtest's fork-based "fast" style is only
// safe before worker threads exist, and every engine run joins its
// pool before returning, so later forks in this suite stay safe too.
TEST(FaultInjectionDeathTest, DieAtBoundaryKillsAfterJournalingJob)
{
    const std::string path = tempPath("die.journal");
    const std::vector<SweepJob> jobs = campaign();

    EXPECT_EXIT(
        {
            SweepOptions opts;
            opts.threads = 1;
            opts.journalPath = path;
            opts.tool = "unit";
            opts.faults = FaultPlan::parse("die:job=2");
            SweepEngine engine(opts);
            engine.run(jobs);
        },
        ::testing::ExitedWithCode(kFaultDieExitCode), "");

    // The fault fires right after job 2's record is fsync'd, so with
    // one worker the journal must hold exactly jobs 0..2.
    const JournalData data = readJournal(path);
    EXPECT_EQ(data.tool, "unit");
    EXPECT_EQ(data.signature, campaignSignature(jobs));
    EXPECT_EQ(data.jobCount, jobs.size());
    ASSERT_EQ(data.results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(data.results[i].index, i);
        EXPECT_TRUE(data.results[i].ok);
        EXPECT_EQ(data.results[i].result.instructions, 1000 + i);
    }
}

/** The acceptance pin: kill mid-campaign, resume, diff byte-for-byte. */
TEST(FaultInjectionDeathTest, ResumedCampaignMatchesUninterruptedRun)
{
    const std::string path = tempPath("resume.journal");
    std::atomic<std::size_t> executed{0};
    const std::vector<SweepJob> jobs = campaign(&executed);

    // Reference: the uninterrupted run. Thread count must match the
    // resumed run below — it is recorded in the report JSON.
    SweepOptions refOpts;
    refOpts.threads = 1;
    SweepEngine refEngine(refOpts);
    const std::vector<JobResult> refResults = refEngine.run(jobs);
    const std::string refJson =
        stableJson("unit", refEngine, jobs, refResults);
    executed.store(0);

    EXPECT_EXIT(
        {
            SweepOptions opts;
            opts.threads = 1;
            opts.journalPath = path;
            opts.tool = "unit";
            opts.faults = FaultPlan::parse("die:job=2");
            SweepEngine engine(opts);
            engine.run(jobs);
        },
        ::testing::ExitedWithCode(kFaultDieExitCode), "");

    SweepOptions resOpts;
    resOpts.threads = 1;
    resOpts.journalPath = path;
    resOpts.resume = true;
    resOpts.tool = "unit";
    SweepEngine resEngine(resOpts);
    const std::vector<JobResult> resResults = resEngine.run(jobs);

    // Jobs 0..2 came from the journal; only 3..5 were re-executed.
    EXPECT_EQ(resEngine.lastTelemetry().resumedJobs, 3u);
    EXPECT_EQ(executed.load(), 3u);
    EXPECT_EQ(stableJson("unit", resEngine, jobs, resResults), refJson);
}

/**
 * A kill that lands mid-write (not at the fsync boundary) leaves a
 * torn final record. Resume must drop it, re-run that job, and leave
 * a journal that parses cleanly — i.e. a second resume works too.
 */
TEST(FaultInjectionDeathTest, ResumeAfterTornFinalRecordReRunsTornJob)
{
    const std::string path = tempPath("torn_resume.journal");
    std::atomic<std::size_t> executed{0};
    const std::vector<SweepJob> jobs = campaign(&executed);

    SweepOptions refOpts;
    refOpts.threads = 1;
    SweepEngine refEngine(refOpts);
    const std::vector<JobResult> refResults = refEngine.run(jobs);
    const std::string refJson =
        stableJson("unit", refEngine, jobs, refResults);
    executed.store(0);

    EXPECT_EXIT(
        {
            SweepOptions opts;
            opts.threads = 1;
            opts.journalPath = path;
            opts.tool = "unit";
            opts.faults = FaultPlan::parse("die:job=2");
            SweepEngine engine(opts);
            engine.run(jobs);
        },
        ::testing::ExitedWithCode(kFaultDieExitCode), "");

    // Turn the boundary kill into a mid-write one: tear job 2's
    // record off the tail.
    const std::string content = readFile(path);
    writeFile(path, content.substr(0, content.size() - 5));

    SweepOptions resOpts;
    resOpts.threads = 1;
    resOpts.journalPath = path;
    resOpts.resume = true;
    resOpts.tool = "unit";
    SweepEngine resEngine(resOpts);
    const std::vector<JobResult> resResults = resEngine.run(jobs);

    // Jobs 0..1 came from the journal; torn job 2 re-ran with 3..5.
    EXPECT_EQ(resEngine.lastTelemetry().resumedJobs, 2u);
    EXPECT_EQ(executed.load(), 4u);
    EXPECT_EQ(stableJson("unit", resEngine, jobs, resResults), refJson);

    // The truncated-then-appended journal reads back whole: no CRC
    // mismatch where the torn bytes used to be.
    const JournalData data = readJournal(path);
    EXPECT_EQ(data.results.size(), jobs.size());
    EXPECT_EQ(data.validBytes, readFile(path).size());
}

TEST(FaultPlan, ParsesFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "throw:job=2:attempt=1;stall:job=5:ms=300;die:job=7");
    ASSERT_EQ(plan.rules().size(), 3u);
    EXPECT_FALSE(plan.empty());

    unsigned stallMs = 0;
    EXPECT_EQ(plan.preAttempt(2, 1, stallMs), FaultKind::Throw);
    EXPECT_EQ(plan.preAttempt(2, 0, stallMs), FaultKind::None);
    EXPECT_EQ(plan.preAttempt(5, 0, stallMs), FaultKind::Stall);
    EXPECT_EQ(stallMs, 300u);
    EXPECT_EQ(plan.preAttempt(7, 0, stallMs), FaultKind::None);
    EXPECT_TRUE(plan.dieAtBoundary(7));
    EXPECT_FALSE(plan.dieAtBoundary(2));
    EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlan, RejectsBadSpecs)
{
    const std::vector<std::string> bad = {
        "nonsense",             // unknown action
        "throw",                // no job=
        "throw:attempt=1",      // still no job=
        "die:job=1:attempt=0",  // die fires at the boundary, not an
                                // attempt
        "throw:job=1:ms=5",     // ms is stall-only
        "throw:job=abc",        // not a number
        "stall:job=1:ms=",      // empty number
        "throw:job=1:oops=2",   // unknown field
    };
    for (const std::string &spec : bad) {
        try {
            (void)FaultPlan::parse(spec);
            FAIL() << "accepted bad spec: " << spec;
        } catch (const BvcError &e) {
            EXPECT_EQ(e.category(), ErrorCategory::Config) << spec;
            EXPECT_NE(std::string(e.what()).find("BVC_FAULT"),
                      std::string::npos)
                << spec;
        }
    }
}

TEST(FaultPlan, FromEnvReadsTheVariable)
{
    EXPECT_TRUE(FaultPlan::fromEnv().empty());
    ScopedEnv env("BVC_FAULT", "throw:job=0");
    const FaultPlan plan = FaultPlan::fromEnv();
    ASSERT_EQ(plan.rules().size(), 1u);
    EXPECT_EQ(plan.rules()[0].kind, FaultKind::Throw);
}

TEST(Retry, InjectedThrowIsRetriedToSuccess)
{
    std::atomic<std::size_t> calls{0};
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("flaky", [&calls] {
        calls.fetch_add(1);
        return RunResult{};
    }));

    SweepOptions opts;
    opts.threads = 1;
    opts.retries = 2;
    opts.backoffBaseSeconds = 0.001;
    opts.backoffCapSeconds = 0.002;
    // The fault fires before the job body, so the function itself
    // must run exactly once, on the third attempt.
    opts.faults =
        FaultPlan::parse("throw:job=0:attempt=0;throw:job=0:attempt=1");
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::None);
    EXPECT_EQ(calls.load(), 1u);
}

TEST(Retry, ExhaustedRetriesKeepTheInjectedCategory)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("doomed", [] { return RunResult{}; }));

    SweepOptions opts;
    opts.threads = 1;
    opts.retries = 1;
    opts.backoffBaseSeconds = 0.001;
    opts.backoffCapSeconds = 0.002;
    opts.faults =
        FaultPlan::parse("throw:job=0:attempt=0;throw:job=0:attempt=1");
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Injected);
    EXPECT_NE(results[0].error.find("[injected]"), std::string::npos);
    EXPECT_NE(results[0].error.find("attempt 2"), std::string::npos);
}

TEST(Retry, ModelExceptionsAreClassifiedAndRetried)
{
    std::atomic<std::size_t> calls{0};
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("broken", [&calls]() -> RunResult {
        calls.fetch_add(1);
        throw std::runtime_error("simulated model bug");
    }));

    SweepOptions opts;
    opts.threads = 1;
    opts.retries = 2;
    opts.backoffBaseSeconds = 0.001;
    opts.backoffCapSeconds = 0.002;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Model);
    EXPECT_NE(results[0].error.find("simulated model bug"),
              std::string::npos);
}

TEST(Retry, BvcErrorCategoryIsPreserved)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("traceless", []() -> RunResult {
        throw BvcError(ErrorCategory::Trace, "bad trace tuple");
    }));

    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Trace);
    EXPECT_NE(results[0].error.find("[trace]"), std::string::npos);
}

TEST(Retry, NonStdExceptionTypeIsDemangled)
{
    struct WeirdFailure
    {
    };
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("weird", []() -> RunResult {
        throw WeirdFailure{};
    }));

    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Unknown);
    // The old engine reported "unknown exception"; the demangler must
    // now surface the actual type name.
    EXPECT_NE(results[0].error.find("WeirdFailure"), std::string::npos);
}

TEST(Watchdog, StalledJobIsClassifiedAsTimeout)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(fnJob("stalled", [] { return RunResult{}; }));
    jobs.push_back(fnJob("healthy", [] {
        RunResult r;
        r.instructions = 7;
        return r;
    }));

    SweepOptions opts;
    opts.threads = 2;
    opts.retries = 2; // must NOT apply: timeouts are terminal
    opts.jobTimeoutSeconds = 0.05;
    opts.faults = FaultPlan::parse("stall:job=0:ms=400");
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Timeout);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_NE(results[0].error.find("[timeout]"), std::string::npos);
    EXPECT_NE(results[0].error.find("wall-clock budget"),
              std::string::npos);
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(results[1].result.instructions, 7u);
    EXPECT_EQ(engine.lastTelemetry().timedOutJobs, 1u);
}

TEST(Backoff, DelayIsDeterministicJitteredAndCapped)
{
    const std::uint64_t seed = 0xb5c0ffee;
    const double d1 = backoffDelaySeconds(seed, 3, 1, 0.05, 2.0);
    const double d2 = backoffDelaySeconds(seed, 3, 1, 0.05, 2.0);
    EXPECT_EQ(d1, d2); // same inputs, same delay, on every host

    // Retry 1 jitters nominal base*2^0 into [50%, 100%] of itself.
    EXPECT_GE(d1, 0.025);
    EXPECT_LE(d1, 0.05);

    // Deep retries saturate at the cap (still jittered).
    const double deep = backoffDelaySeconds(seed, 3, 30, 0.05, 2.0);
    EXPECT_GE(deep, 1.0);
    EXPECT_LE(deep, 2.0);

    // The jitter stream is keyed on (seed, job, retry).
    EXPECT_NE(backoffDelaySeconds(seed, 4, 1, 0.05, 2.0), d1);
    EXPECT_NE(backoffDelaySeconds(seed + 1, 3, 1, 0.05, 2.0), d1);
}

TEST(Journal, RoundTripsJobResults)
{
    const std::string path = tempPath("roundtrip.journal");
    JobResult ok;
    ok.index = 0;
    ok.label = "base";
    ok.trace = "SPECFP/milc.0";
    ok.ok = true;
    ok.attempts = 1;
    ok.wallSeconds = 0.125;
    ok.result.instructions = (std::uint64_t{1} << 53) + 1;
    ok.result.ipc = 1.2345678901234567;
    JobResult bad;
    bad.index = 1;
    bad.label = "test";
    bad.trace = "SPECFP/milc.0";
    bad.ok = false;
    bad.error = "weird \"quoted\" error\nwith a newline";
    bad.errorCategory = ErrorCategory::Timeout;
    bad.attempts = 3;

    {
        JournalWriter writer(path, "unit", "deadbeef", 2);
        writer.append(ok);
        writer.append(bad);
    }

    const JournalData data = readJournal(path);
    EXPECT_EQ(data.tool, "unit");
    EXPECT_EQ(data.signature, "deadbeef");
    EXPECT_EQ(data.jobCount, 2u);
    ASSERT_EQ(data.results.size(), 2u);
    EXPECT_TRUE(data.results[0].ok);
    EXPECT_EQ(data.results[0].result.instructions,
              (std::uint64_t{1} << 53) + 1);
    EXPECT_EQ(data.results[0].result.ipc, ok.result.ipc);
    EXPECT_EQ(data.results[0].wallSeconds, 0.125);
    EXPECT_FALSE(data.results[1].ok);
    EXPECT_EQ(data.results[1].error, bad.error);
    EXPECT_EQ(data.results[1].errorCategory, ErrorCategory::Timeout);
    EXPECT_EQ(data.results[1].attempts, 3u);
}

TEST(Journal, CrcCorruptionIsRejectedWithByteOffset)
{
    const std::string path = tempPath("corrupt.journal");
    {
        JournalWriter writer(path, "unit", "deadbeef", 1);
        JobResult r;
        r.index = 0;
        r.label = "base";
        r.ok = true;
        r.attempts = 1;
        writer.append(r);
    }

    // Flip one payload byte of the final (complete) record.
    std::string content = readFile(path);
    ASSERT_GE(content.size(), 2u);
    content[content.size() - 2] ^= 1;
    writeFile(path, content);

    try {
        (void)readJournal(path);
        FAIL() << "corrupted journal was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

TEST(Journal, MalformedFramingIsRejected)
{
    const std::string path = tempPath("framing.journal");
    writeFile(path, "NOTAJOURNAL hello\n");
    try {
        (void)readJournal(path);
        FAIL() << "malformed journal was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
    }
}

TEST(Journal, TornFinalRecordIsTolerated)
{
    const std::string path = tempPath("torn.journal");
    {
        JournalWriter writer(path, "unit", "deadbeef", 2);
        JobResult r;
        r.index = 0;
        r.label = "base";
        r.ok = true;
        r.attempts = 1;
        writer.append(r);
        r.index = 1;
        writer.append(r);
    }

    // A crash mid-write leaves a final record without its newline;
    // that record is lost, everything before it is recovered.
    std::string content = readFile(path);
    writeFile(path, content.substr(0, content.size() - 5));

    const JournalData data = readJournal(path);
    ASSERT_EQ(data.results.size(), 1u);
    EXPECT_EQ(data.results[0].index, 0u);
}

TEST(Journal, ResumeTruncatesTornTailBeforeAppending)
{
    const std::string path = tempPath("torn_append.journal");
    JobResult r;
    r.label = "base";
    r.ok = true;
    r.attempts = 1;
    {
        JournalWriter writer(path, "unit", "deadbeef", 2);
        r.index = 0;
        writer.append(r);
        r.index = 1;
        writer.append(r);
    }

    // Tear the final record, as a crash mid-write would.
    const std::string content = readFile(path);
    writeFile(path, content.substr(0, content.size() - 5));
    const JournalData torn = readJournal(path);
    ASSERT_EQ(torn.results.size(), 1u);

    // The resume writer must truncate the torn bytes away before
    // appending; otherwise the new record is glued onto them, forming
    // a frame whose CRC can never match and poisoning the journal for
    // any further resume.
    {
        JournalWriter writer(path, torn.validBytes);
        r.index = 1;
        r.label = "redo";
        writer.append(r);
    }

    const JournalData data = readJournal(path);
    EXPECT_EQ(data.validBytes, readFile(path).size());
    ASSERT_EQ(data.results.size(), 2u);
    EXPECT_EQ(data.results[0].index, 0u);
    EXPECT_EQ(data.results[1].index, 1u);
    EXPECT_EQ(data.results[1].label, "redo");
}

TEST(Journal, ResumeRefusesAForeignCampaign)
{
    JournalData data;
    data.tool = "unit";
    data.signature = "deadbeef";
    data.jobCount = 4;

    EXPECT_NO_THROW(
        checkResumeCompatible(data, "x.journal", "deadbeef", 4));
    try {
        checkResumeCompatible(data, "x.journal", "cafef00d", 4);
        FAIL() << "signature mismatch was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
    EXPECT_THROW(checkResumeCompatible(data, "x.journal", "deadbeef", 5),
                 BvcError);
}

TEST(Journal, CampaignSignatureCoversJobIdentity)
{
    std::vector<SweepJob> jobs = campaign();
    const std::string sig = campaignSignature(jobs);
    EXPECT_EQ(sig.size(), 8u);
    EXPECT_EQ(campaignSignature(campaign()), sig);

    std::vector<SweepJob> relabeled = campaign();
    relabeled[3].label = "renamed";
    EXPECT_NE(campaignSignature(relabeled), sig);

    std::vector<SweepJob> retraced = campaign();
    retraced[0].trace.name = "synthetic/other";
    EXPECT_NE(campaignSignature(retraced), sig);

    std::vector<SweepJob> rewindowed = campaign();
    rewindowed[5].opts.measure += 1;
    EXPECT_NE(campaignSignature(rewindowed), sig);

    // Labels are often bare arch names, so the configuration itself
    // must be part of the identity: a resume under a different
    // --llc-kb/--ways/--arch must be refused, not silently imported.
    std::vector<SweepJob> resized = campaign();
    resized[1].config.llcBytes *= 2;
    EXPECT_NE(campaignSignature(resized), sig);

    std::vector<SweepJob> rewayed = campaign();
    rewayed[1].config.llcWays /= 2;
    EXPECT_NE(campaignSignature(rewayed), sig);

    std::vector<SweepJob> rearched = campaign();
    rearched[2].config.arch = LlcArch::BaseVictim;
    EXPECT_NE(campaignSignature(rearched), sig);

    std::vector<SweepJob> recompressed = campaign();
    recompressed[2].config.compressor = CompressorKind::Fpc;
    EXPECT_NE(campaignSignature(recompressed), sig);

    // The trace name is only a tag; the generated stream is defined
    // by the parameters, so those count too.
    std::vector<SweepJob> reseeded = campaign();
    reseeded[0].trace.seed += 1;
    EXPECT_NE(campaignSignature(reseeded), sig);

    std::vector<SweepJob> repatterned = campaign();
    repatterned[0].trace.pattern = DataPatternKind::Zeros;
    EXPECT_NE(campaignSignature(repatterned), sig);
}

TEST(Journal, ResumeOfCompleteJournalExecutesNothing)
{
    const std::string path = tempPath("complete.journal");
    std::atomic<std::size_t> executed{0};
    const std::vector<SweepJob> jobs = campaign(&executed);

    SweepOptions first;
    first.threads = 2;
    first.journalPath = path;
    first.tool = "unit";
    SweepEngine firstEngine(first);
    const std::vector<JobResult> ref = firstEngine.run(jobs);
    EXPECT_EQ(executed.load(), jobs.size());
    executed.store(0);

    SweepOptions second;
    second.threads = 2;
    second.journalPath = path;
    second.resume = true;
    second.tool = "unit";
    SweepEngine secondEngine(second);
    const std::vector<JobResult> res = secondEngine.run(jobs);

    EXPECT_EQ(executed.load(), 0u);
    EXPECT_EQ(secondEngine.lastTelemetry().resumedJobs, jobs.size());
    EXPECT_EQ(stableJson("unit", secondEngine, jobs, res),
              stableJson("unit", firstEngine, jobs, ref));
}
