/** @file Unit tests for the generic set-associative cache (L1/L2). */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace bvc
{
namespace
{

constexpr Addr kBlk = 0x1000;

Addr
sameSetAddr(const Cache &cache, Addr base, unsigned n)
{
    // Addresses n sets apart map to the same set.
    return base + static_cast<Addr>(n) * cache.numSets() * kLineBytes;
}

TEST(Cache, MissThenHit)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    EXPECT_FALSE(cache.access(kBlk, false, evicted));
    EXPECT_TRUE(cache.access(kBlk, false, evicted));
    EXPECT_EQ(cache.stats().get("read_misses"), 1u);
    EXPECT_EQ(cache.stats().get("read_hits"), 1u);
}

TEST(Cache, GeometryDerivedFromSize)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    EXPECT_EQ(cache.numSets(), 32u);
    EXPECT_EQ(cache.numWays(), 4u);
}

TEST(Cache, FillsInvalidWaysWithoutEviction)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    for (unsigned i = 0; i < 4; ++i) {
        cache.access(sameSetAddr(cache, kBlk, i), false, evicted);
        EXPECT_FALSE(evicted.has_value());
    }
}

TEST(Cache, EvictsLruWhenSetFull)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    for (unsigned i = 0; i < 4; ++i)
        cache.access(sameSetAddr(cache, kBlk, i), false, evicted);
    cache.access(sameSetAddr(cache, kBlk, 4), false, evicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, kBlk); // oldest
    EXPECT_FALSE(evicted->dirty);
}

TEST(Cache, HitRefreshesLruPosition)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    for (unsigned i = 0; i < 4; ++i)
        cache.access(sameSetAddr(cache, kBlk, i), false, evicted);
    cache.access(kBlk, false, evicted); // refresh oldest
    cache.access(sameSetAddr(cache, kBlk, 4), false, evicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, sameSetAddr(cache, kBlk, 1));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    cache.access(kBlk, true, evicted); // store
    for (unsigned i = 1; i <= 4; ++i)
        cache.access(sameSetAddr(cache, kBlk, i), false, evicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, kBlk);
    EXPECT_TRUE(evicted->dirty);
    EXPECT_EQ(cache.stats().get("dirty_evictions"), 1u);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    cache.access(kBlk, false, evicted);
    EXPECT_FALSE(cache.probeDirty(kBlk));
    cache.access(kBlk, true, evicted);
    EXPECT_TRUE(cache.probeDirty(kBlk));
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache cache("t", 8 * 1024, 2, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    cache.access(kBlk, false, evicted);
    cache.access(sameSetAddr(cache, kBlk, 1), false, evicted);
    // Probing the LRU line must not promote it.
    EXPECT_TRUE(cache.probe(kBlk));
    cache.access(sameSetAddr(cache, kBlk, 2), false, evicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, kBlk);
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    cache.access(kBlk, true, evicted);
    const auto dirty = cache.invalidate(kBlk);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_TRUE(*dirty);
    EXPECT_FALSE(cache.probe(kBlk));
    EXPECT_FALSE(cache.invalidate(kBlk).has_value());
}

TEST(Cache, InvalidatedWayReusedBeforeEviction)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    for (unsigned i = 0; i < 4; ++i)
        cache.access(sameSetAddr(cache, kBlk, i), false, evicted);
    cache.invalidate(sameSetAddr(cache, kBlk, 2));
    cache.access(sameSetAddr(cache, kBlk, 5), false, evicted);
    EXPECT_FALSE(evicted.has_value());
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    for (unsigned i = 0; i < 20; ++i)
        cache.access(kBlk + i * kLineBytes, false, evicted);
    cache.flush();
    std::size_t count = 0;
    cache.forEachLine([&](const CacheLine &) { ++count; });
    EXPECT_EQ(count, 0u);
}

TEST(Cache, ForEachLineVisitsValidLines)
{
    Cache cache("t", 8 * 1024, 4, ReplacementKind::Lru, 3);
    std::optional<Eviction> evicted;
    cache.access(kBlk, false, evicted);
    cache.access(kBlk + kLineBytes, true, evicted);
    std::size_t count = 0;
    bool sawDirty = false;
    cache.forEachLine([&](const CacheLine &line) {
        ++count;
        sawDirty = sawDirty || line.dirty;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_TRUE(sawDirty);
}

TEST(CacheDeathTest, NonPowerOfTwoSetsPanics)
{
    EXPECT_DEATH(Cache("t", 3 * 1024, 4, ReplacementKind::Lru, 1),
                 "power of two");
}

} // namespace
} // namespace bvc
