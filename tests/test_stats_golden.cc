/**
 * @file
 * Fixed-seed golden snapshot of per-model counters. The snapshot file
 * (tests/golden/stats_golden.txt) was generated from the pre-SoA
 * AoS hot path and committed; this test regenerates the identical runs
 * and compares byte-for-byte, so any refactor of the probe/metadata
 * hot path, the trace decode batching, or the BDI size-only scan that
 * changes a single counter anywhere in the pipeline fails loudly.
 *
 * Every snapshotted quantity is an integer counter (no floats), so the
 * comparison is exact on any host. Regenerate deliberately with
 *
 *     BVC_UPDATE_GOLDEN=1 ./build/tests/test_stats_golden
 *
 * and review the diff like any other behaviour change.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "runner/report.hh"
#include "sim/multicore.hh"
#include "sim/system.hh"

namespace bvc
{
namespace
{

constexpr std::uint64_t kWarmup = 5'000;
constexpr std::uint64_t kMeasure = 20'000;

/**
 * Every generator knob pinned explicitly — the snapshot must not move
 * when WorkloadSuite's calibration does.
 */
TraceParams
goldenTrace(std::uint64_t seed)
{
    TraceParams p;
    p.name = "golden/mixed." + std::to_string(seed);
    p.category = WorkloadCategory::SpecInt;
    p.seed = seed;
    p.loadFrac = 0.30;
    p.storeFrac = 0.12;
    p.streamFrac = 0.25;
    p.chaseFrac = 0.05;
    p.wsBytes = 1ULL << 20;
    p.hotBytes = 32ULL << 10;
    p.residentBytes = 256ULL << 10;
    p.hotFrac = 0.50;
    p.residentFrac = 0.30;
    p.streamBytes = 2ULL << 20;
    p.chaseBytes = 128ULL << 10;
    p.pattern = DataPatternKind::MixedGood;
    p.pcCount = 64;
    p.streamCursors = 4;
    return p;
}

constexpr LlcArch kArches[] = {
    LlcArch::Uncompressed, LlcArch::TwoTagNaive, LlcArch::TwoTagModified,
    LlcArch::BaseVictim,   LlcArch::Vsc,         LlcArch::Dcc,
};

/** One single-core measured window per LLC organization. */
std::string
singleCoreSnapshot()
{
    std::ostringstream out;
    for (const LlcArch arch : kArches) {
        SystemConfig cfg = SystemConfig::benchDefaults();
        cfg.arch = arch;
        System system(cfg, goldenTrace(77));
        const RunResult r = system.run(kWarmup, kMeasure);
        out << "== " << llcArchName(arch) << " ==\n";
        out << "instructions " << r.instructions << "\n";
        out << "cycles " << r.cycles << "\n";
        out << "dram_reads " << r.dramReads << "\n";
        out << "dram_writes " << r.dramWrites << "\n";
        out << "dram_demand_reads " << r.dramDemandReads << "\n";
        out << system.llc().stats().dump();
    }
    return out.str();
}

/** One 4-core mix (shared LLC) to pin the multicore decode path. */
std::string
multiCoreSnapshot()
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    std::array<TraceParams, MultiCoreSystem::kThreads> traces = {
        goldenTrace(101), goldenTrace(202), goldenTrace(303),
        goldenTrace(404)};
    MultiCoreSystem system(cfg, traces);
    const MultiRunResult r = system.run(3'000, 8'000);
    std::ostringstream out;
    out << "== multicore base-victim ==\n";
    for (std::size_t i = 0; i < MultiCoreSystem::kThreads; ++i)
        out << "core" << i << "_instructions " << r.instructions[i]
            << "\n";
    out << "dram_reads " << r.dramReads << "\n";
    out << "dram_writes " << r.dramWrites << "\n";
    out << system.llc().stats().dump();
    return out.str();
}

std::string
goldenPath()
{
    return std::string(BVC_GOLDEN_DIR) + "/stats_golden.txt";
}

TEST(StatsGolden, CountersMatchCommittedSnapshot)
{
    const std::string got =
        singleCoreSnapshot() + multiCoreSnapshot();

    const char *update = std::getenv("BVC_UPDATE_GOLDEN");
    if (update != nullptr && std::string(update) == "1") {
        writeFile(goldenPath(), got);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << goldenPath()
        << " — regenerate with BVC_UPDATE_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(want.str(), got)
        << "per-model counters diverged from the committed golden "
           "snapshot; if the change is intentional, regenerate with "
           "BVC_UPDATE_GOLDEN=1 and review the diff";
}

} // namespace
} // namespace bvc
