/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hh"

namespace bvc
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NearbySeedsDecorrelated)
{
    // splitmix seeding should make seed 7 and seed 8 unrelated.
    Rng a(7), b(8);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(Rng, RangeZeroAndOne)
{
    Rng rng(4);
    EXPECT_EQ(rng.range(0), 0u);
    EXPECT_EQ(rng.range(1), 0u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeRoughlyUniform)
{
    Rng rng(6);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.range(10)];
    for (const int count : buckets) {
        EXPECT_GT(count, n / 10 * 0.9);
        EXPECT_LT(count, n / 10 * 1.1);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BetweenDegenerate)
{
    Rng rng(8);
    EXPECT_EQ(rng.between(5, 5), 5);
    EXPECT_EQ(rng.between(5, 4), 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, GeometricBounds)
{
    Rng rng(12);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.geometric(0.3, 50);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 50u);
    }
}

TEST(Rng, GeometricSkewsSmall)
{
    Rng rng(13);
    std::uint64_t ones = 0;
    for (int i = 0; i < 10000; ++i)
        ones += rng.geometric(0.5, 100) == 1;
    // P(X=1) = 0.5 for a geometric with p = 0.5.
    EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.5, 0.03);
}

TEST(Rng, WeightedRespectsCumulativeWeights)
{
    Rng rng(14);
    const double cumulative[] = {1.0, 1.0, 4.0}; // weights 1, 0, 3
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        ++counts[rng.weighted(cumulative, 3)];
    EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

} // namespace
} // namespace bvc
