/**
 * @file
 * Shared helpers for the compressed-cache tests: crafted 64B lines with
 * known BDI compressed sizes (in 4B segments).
 */

#ifndef BVC_TESTS_TEST_LINES_HH_
#define BVC_TESTS_TEST_LINES_HH_

#include <array>
#include <cstring>

#include "compress/bdi.hh"
#include "core/llc_interface.hh"
#include "util/rng.hh"

namespace bvc::testhelpers
{

using Line = std::array<std::uint8_t, kLineBytes>;

/** All-zero line: 0 segments (tag-only storage). */
inline Line
zeroLine()
{
    return Line{};
}

/** Small-integer line: BDI B8D1, 17 bytes -> 5 segments. */
inline Line
smallLine(std::uint64_t salt = 0)
{
    Line line{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = (i * 3 + salt) & 0x7f;
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    return line;
}

/** Medium line: BDI B8D2, 25 bytes -> 7 segments. */
inline Line
mediumLine(std::uint64_t salt = 0)
{
    Line line{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = 1000 + i * 997 + (salt & 0xff);
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    return line;
}

/** Large-but-compressed line: BDI B8D4, 41 bytes -> 11 segments. */
inline Line
largeLine(std::uint64_t salt = 0)
{
    Line line{};
    const std::uint64_t base = 0x00007f0000000000ULL;
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v =
            base + 0x100000ULL * i + (salt & 0xffff) + 0x10000000ULL;
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    return line;
}

/** Incompressible line: 16 segments. */
inline Line
randomLine(std::uint64_t seed = 1)
{
    Rng rng(seed * 811 + 3);
    Line line{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = rng.next();
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    return line;
}

/** Compressed segment count of a line under BDI. */
inline SegCount
segmentsOf(const Line &line)
{
    const BdiCompressor bdi;
    return compressedSegmentsFor(bdi, line.data());
}

} // namespace bvc::testhelpers

#endif // BVC_TESTS_TEST_LINES_HH_
