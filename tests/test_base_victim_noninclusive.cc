/**
 * @file
 * Tests for the non-inclusive Base-Victim configuration of Section
 * IV.B.3: victim lines may be dirty, write hits to the Victim Cache
 * promote like read hits (with recompression), dirty victim evictions
 * write back to memory, and the mirror/hit-superset guarantees still
 * hold. Also covers the 8-byte segment-quantum variant (the paper's
 * worked examples) against the default 4-byte evaluation granularity.
 */

#include <gtest/gtest.h>

#include "core/base_victim_cache.hh"
#include "core/uncompressed_llc.hh"
#include "test_lines.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

constexpr std::size_t kSize = 16 * 1024;
constexpr std::size_t kWays = 4;
constexpr Addr kSetStride = 64 * kLineBytes;

Addr
setAddr(unsigned n)
{
    return 0x40000 + static_cast<Addr>(n) * kSetStride;
}

class NonInclusiveTest : public ::testing::Test
{
  protected:
    NonInclusiveTest()
        : llc_(kSize, kWays, ReplacementKind::Lru, VictimReplKind::Ecm,
               bdi_, /*inclusive=*/false)
    {
    }

    void
    fillBase()
    {
        const Line small = smallLine();
        for (unsigned i = 0; i < kWays; ++i)
            llc_.access(setAddr(i), AccessType::Read, small.data());
    }

    BdiCompressor bdi_;
    BaseVictimLlc llc_;
};

TEST_F(NonInclusiveTest, DirtyVictimParksWithoutWriteback)
{
    fillBase();
    const Line small = smallLine();
    // Dirty line 0, then evict it: in non-inclusive mode it parks
    // dirty with NO writeback and NO back-invalidation.
    llc_.access(setAddr(0), AccessType::Writeback, small.data());
    llc_.access(setAddr(1), AccessType::Read, small.data());
    llc_.access(setAddr(2), AccessType::Read, small.data());
    llc_.access(setAddr(3), AccessType::Read, small.data());
    const LlcResult result =
        llc_.access(setAddr(4), AccessType::Read, small.data());
    EXPECT_TRUE(result.memWritebacks.empty());
    EXPECT_TRUE(result.backInvalidations.empty());
    EXPECT_TRUE(llc_.probeVictim(setAddr(0)));
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(NonInclusiveTest, DroppedDirtyVictimWritesBack)
{
    // Incompressible dirty lines can never park: eviction writes back.
    for (unsigned i = 0; i < kWays; ++i) {
        const Line line = randomLine(i);
        llc_.access(setAddr(i), AccessType::Read, line.data());
    }
    const Line dirty = randomLine(0);
    llc_.access(setAddr(0), AccessType::Writeback, dirty.data());
    llc_.access(setAddr(1), AccessType::Read, randomLine(1).data());
    llc_.access(setAddr(2), AccessType::Read, randomLine(2).data());
    llc_.access(setAddr(3), AccessType::Read, randomLine(3).data());
    const LlcResult result = llc_.access(
        setAddr(4), AccessType::Read, randomLine(4).data());
    ASSERT_EQ(result.memWritebacks.size(), 1u);
    EXPECT_EQ(result.memWritebacks[0], setAddr(0));
    EXPECT_FALSE(llc_.probe(setAddr(0)));
}

TEST_F(NonInclusiveTest, DisplacedDirtyVictimWritesBack)
{
    fillBase();
    const Line small = smallLine();
    // Park a dirty line 0 in the victim cache.
    llc_.access(setAddr(0), AccessType::Writeback, small.data());
    llc_.access(setAddr(1), AccessType::Read, small.data());
    llc_.access(setAddr(2), AccessType::Read, small.data());
    llc_.access(setAddr(3), AccessType::Read, small.data());
    llc_.access(setAddr(4), AccessType::Read, small.data());
    ASSERT_TRUE(llc_.probeVictim(setAddr(0)));

    // Churn until the dirty victim gets displaced; its eviction must
    // produce exactly one writeback somewhere along the way.
    std::size_t writebacks = 0;
    for (unsigned i = 5; i < 40 && llc_.probeVictim(setAddr(0)); ++i) {
        const LlcResult r =
            llc_.access(setAddr(i), AccessType::Read, small.data());
        for (const Addr addr : r.memWritebacks)
            writebacks += addr == setAddr(0);
    }
    EXPECT_FALSE(llc_.probeVictim(setAddr(0)));
    EXPECT_EQ(writebacks, 1u);
}

TEST_F(NonInclusiveTest, WritebackHitOnVictimPromotesDirty)
{
    fillBase();
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    ASSERT_TRUE(llc_.probeVictim(setAddr(0)));

    // Section IV.B.3: "the Victim Cache write hit is handled in
    // exactly the same way as a Victim Cache read hit", with the line
    // recompressed to its new size, then promoted.
    const Line rewritten = mediumLine(3);
    const LlcResult result =
        llc_.access(setAddr(0), AccessType::Writeback,
                    rewritten.data());
    EXPECT_TRUE(result.hit);
    EXPECT_TRUE(result.victimHit);
    EXPECT_TRUE(llc_.probeBase(setAddr(0)));
    EXPECT_FALSE(llc_.probeVictim(setAddr(0)));
    EXPECT_EQ(llc_.stats().get("victim_write_hits"), 1u);
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(NonInclusiveTest, WritebackMissAllocatesDirtyLine)
{
    const Line small = smallLine();
    const LlcResult result =
        llc_.access(setAddr(9), AccessType::Writeback, small.data());
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(llc_.probeBase(setAddr(9)));
    EXPECT_EQ(llc_.stats().get("writeback_fills"), 1u);
}

TEST_F(NonInclusiveTest, NoBackInvalidationsEver)
{
    const DataPattern pattern(DataPatternKind::MixedGood, 8);
    Rng rng(21);
    Line line{};
    std::size_t backInvals = 0;
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = 0x9000 + rng.range(2048) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const bool writeback = rng.chance(0.2);
        const LlcResult r = llc_.access(
            blk, writeback ? AccessType::Writeback : AccessType::Read,
            line.data());
        backInvals += r.backInvalidations.size();
    }
    EXPECT_EQ(backInvals, 0u);
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(NonInclusiveTest, MirrorInvariantStillHolds)
{
    UncompressedLlc shadow(kSize, kWays, ReplacementKind::Lru);
    const DataPattern pattern(DataPatternKind::MixedGood, 13);
    Rng rng(5);
    Line line{};
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = rng.range(1500) * kLineBytes;
        pattern.fillLine(blk, line.data());
        // Writebacks only to lines both caches hold in their base
        // content, so the shadow (inclusive) never sees a WB miss.
        AccessType type = AccessType::Read;
        if (rng.chance(0.1) && llc_.probeBase(blk) && shadow.probe(blk))
            type = AccessType::Writeback;
        const LlcResult rs = shadow.access(blk, type, line.data());
        const LlcResult rb = llc_.access(blk, type, line.data());
        if (rs.hit) {
            ASSERT_TRUE(rb.hit) << step;
        }
    }
    for (const SetIdx set : indexRange<SetIdx>(llc_.numSets()))
        ASSERT_EQ(llc_.baseSetContents(set), shadow.setContents(set));
}

TEST(SegmentQuantum, EightByteAlignmentRoundsSizesUp)
{
    const BdiCompressor bdi;
    BaseVictimLlc coarse(kSize, kWays, ReplacementKind::Lru,
                         VictimReplKind::Ecm, bdi, true,
                         /*segmentQuantumBytes=*/8);
    const Line small = smallLine(); // 17B: 5 segs at 4B, 6 segs at 8B
    // Fill and park; with 8B granularity a 17B line occupies 24B.
    for (unsigned i = 0; i <= kWays; ++i)
        coarse.access(setAddr(i), AccessType::Read, small.data());
    EXPECT_TRUE(coarse.probeVictim(setAddr(0)));
    EXPECT_TRUE(coarse.checkInvariants());
}

TEST(SegmentQuantum, CoarseGranularityPairsFewerLines)
{
    const BdiCompressor bdi;
    // A 5-segment line next to an 11-segment base fits exactly at 4B
    // granularity (5+11=16) but not at 8B (6+12=18): the coarse size
    // field wastes pairing opportunities (Section IV.C trade-off).
    BaseVictimLlc fine(kSize, kWays, ReplacementKind::Lru,
                       VictimReplKind::Ecm, bdi, true, 4);
    BaseVictimLlc coarse(kSize, kWays, ReplacementKind::Lru,
                         VictimReplKind::Ecm, bdi, true, 8);

    const Line small = smallLine(); // 17B: 5 segs / 6 coarse segs
    for (BaseVictimLlc *llc : {&fine, &coarse}) {
        llc->access(setAddr(0), AccessType::Read, small.data());
        for (unsigned i = 1; i <= kWays; ++i) {
            const Line big = largeLine(i); // 41B: 11 / 12 segments
            llc->access(setAddr(i), AccessType::Read, big.data());
        }
    }
    // The evicted small line pairs with an 11-segment base only under
    // the finer quantization.
    EXPECT_TRUE(fine.probeVictim(setAddr(0)));
    EXPECT_FALSE(coarse.probeVictim(setAddr(0)));
    EXPECT_FALSE(coarse.probe(setAddr(0)));
}

TEST(SegmentQuantumDeathTest, RejectsNonDividingQuantum)
{
    const BdiCompressor bdi;
    EXPECT_DEATH(BaseVictimLlc(kSize, kWays, ReplacementKind::Lru,
                               VictimReplKind::Ecm, bdi, true, 24),
                 "quantum");
}

} // namespace
} // namespace bvc
