/**
 * @file
 * Sharded-campaign contract (src/runner/merge.hh, supervisor.hh,
 * docs/robustness.md): the engine runs exactly its deterministic
 * slice, shard journals carry and enforce their coordinates, the
 * merge step reassembles a result set identical to the unsharded run
 * and refuses every validation corpse — missing shard, duplicate
 * shard, overlapping slice, foreign signature, torn tail — with a
 * BvcError{Io} naming the shard (and byte offset where one frame is
 * at fault), and the process supervisor restarts dead/stalled workers
 * with bounded attempts before degrading to per-shard provenance.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/journal.hh"
#include "runner/merge.hh"
#include "runner/report.hh"
#include "runner/supervisor.hh"
#include "runner/sweep.hh"
#include "util/error.hh"
#include "util/fault.hh"

using namespace bvc;

namespace
{

SweepJob
fnJob(const std::string &label, std::function<RunResult()> fn)
{
    SweepJob job;
    job.label = label;
    job.trace.name = "synthetic/" + label;
    job.fn = std::move(fn);
    return job;
}

/** A six-job campaign with distinct, deterministic metrics per job. */
std::vector<SweepJob>
campaign(std::atomic<std::size_t> *executed = nullptr)
{
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < 6; ++i)
        jobs.push_back(
            fnJob("job" + std::to_string(i), [i, executed] {
                if (executed != nullptr)
                    executed->fetch_add(1);
                RunResult r;
                r.instructions = 1000 + i;
                r.cycles = 2000 + 3 * i;
                r.ipc = 0.5 + 0.125 * static_cast<double>(i);
                r.dramReads = 10 * i;
                return r;
            }));
    return jobs;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "bvc_shard_" + name;
}

/** Run one shard of `jobs` with a journal; returns the results. */
std::vector<JobResult>
runShard(const std::vector<SweepJob> &jobs, std::size_t shard,
         std::size_t shards, const std::string &journalPath)
{
    SweepOptions opts;
    opts.threads = 1;
    opts.journalPath = journalPath;
    opts.tool = "unit";
    opts.shardIndex = shard;
    opts.shardCount = shards;
    SweepEngine engine(opts);
    return engine.run(jobs);
}

/** Stable JSON of `results` under a fixed telemetry, for byte diffs. */
std::string
stableJson(const std::vector<SweepJob> &jobs,
           const std::vector<JobResult> &results)
{
    SweepTelemetry telemetry;
    telemetry.jobs = jobs.size();
    telemetry.threads = 1;
    SweepReport report = buildReport("unit", telemetry, jobs, results);
    zeroTimings(report);
    return toJson(report);
}

void
expectIoErrorContaining(const std::function<void()> &fn,
                        const std::vector<std::string> &needles)
{
    try {
        fn();
        FAIL() << "expected a BvcError{Io}";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
        const std::string what = e.what();
        for (const std::string &needle : needles)
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << what;
    }
}

} // namespace

// Death tests come first: gtest's fork-based "fast" style is only
// safe before worker threads exist, and every engine run joins its
// pool before returning, so later forks in this suite stay safe too.
TEST(ShardedFaultDeathTest, WorkerStartDieFiresAfterJournalOpen)
{
    const std::string path = tempPath("start_die.journal");
    const std::vector<SweepJob> jobs = campaign();

    EXPECT_EXIT(
        {
            SweepOptions opts;
            opts.threads = 1;
            opts.journalPath = path;
            opts.tool = "unit";
            opts.shardIndex = 1;
            opts.shardCount = 3;
            opts.faults = FaultPlan::parse("die:shard=1");
            SweepEngine engine(opts);
            engine.run(jobs);
        },
        ::testing::ExitedWithCode(kFaultDieExitCode), "");

    // The death fired after the journal was created: a restarted
    // worker can resume it, finding zero completed jobs.
    const JournalData data = readJournal(path);
    EXPECT_EQ(data.shardIndex, 1u);
    EXPECT_EQ(data.shardCount, 3u);
    EXPECT_TRUE(data.results.empty());
}

TEST(ShardedFaultDeathTest, WorkerStartDieSelectsOnProcessAttempt)
{
    const std::vector<SweepJob> jobs = campaign();
    const FaultPlan plan = FaultPlan::parse("die:shard=0:attempt=1");

    // Attempt 0 passes the worker-start gate and completes its slice.
    {
        SweepOptions opts;
        opts.threads = 1;
        opts.tool = "unit";
        opts.shardIndex = 0;
        opts.shardCount = 2;
        opts.workerAttempt = 0;
        opts.faults = plan;
        SweepEngine engine(opts);
        const std::vector<JobResult> results = engine.run(jobs);
        EXPECT_TRUE(results[0].ok);
    }

    // Attempt 1 dies at worker start.
    EXPECT_EXIT(
        {
            SweepOptions opts;
            opts.threads = 1;
            opts.tool = "unit";
            opts.shardIndex = 0;
            opts.shardCount = 2;
            opts.workerAttempt = 1;
            opts.faults = plan;
            SweepEngine engine(opts);
            engine.run(jobs);
        },
        ::testing::ExitedWithCode(kFaultDieExitCode), "");
}

TEST(ShardedEngine, RunsExactlyItsSlice)
{
    std::atomic<std::size_t> executed{0};
    const std::vector<SweepJob> jobs = campaign(&executed);

    SweepOptions opts;
    opts.threads = 2;
    opts.shardIndex = 1;
    opts.shardCount = 3;
    SweepEngine engine(opts);
    const std::vector<JobResult> results = engine.run(jobs);

    // Shard 1/3 of 6 jobs owns exactly {1, 4}.
    EXPECT_EQ(executed.load(), 2u);
    EXPECT_EQ(engine.lastTelemetry().ownedJobs, 2u);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i % 3 == 1) {
            EXPECT_TRUE(results[i].ok) << i;
            EXPECT_EQ(results[i].result.instructions, 1000 + i);
        } else {
            EXPECT_FALSE(results[i].ok) << i;
            EXPECT_EQ(results[i].attempts, 0u) << i;
        }
    }
}

TEST(ShardedEngine, RefusesInvalidShardCoordinates)
{
    const std::vector<SweepJob> jobs = campaign();
    SweepOptions opts;
    opts.threads = 1;
    opts.shardIndex = 3;
    opts.shardCount = 3;
    SweepEngine engine(opts);
    try {
        engine.run(jobs);
        FAIL() << "out-of-range shard index was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

TEST(ShardedEngine, ResumeRefusesWrongShardCoordinates)
{
    const std::string path = tempPath("wrong_coords.journal");
    const std::vector<SweepJob> jobs = campaign();
    (void)runShard(jobs, 0, 2, path);

    SweepOptions opts;
    opts.threads = 1;
    opts.journalPath = path;
    opts.resume = true;
    opts.tool = "unit";
    opts.shardIndex = 1;
    opts.shardCount = 2;
    SweepEngine engine(opts);
    try {
        engine.run(jobs);
        FAIL() << "foreign shard journal was accepted";
    } catch (const BvcError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
        const std::string what = e.what();
        EXPECT_NE(what.find("shard 0/2"), std::string::npos) << what;
        EXPECT_NE(what.find("shard 1/2"), std::string::npos) << what;
    }
}

TEST(ShardedEngine, ResumeRefusesRecordOutsideTheSlice)
{
    const std::string path = tempPath("wrong_slice.journal");
    const std::vector<SweepJob> jobs = campaign();

    // Forge a journal claiming shard 1/2 but holding job 0 — which
    // shard 0 owns. The header coordinates check passes; the per-
    // record slice check must refuse it.
    {
        JournalWriter writer(path, "unit", campaignSignature(jobs),
                             jobs.size(), 1, 2);
        JobResult r;
        r.index = 0;
        r.label = "job0";
        r.trace = "synthetic/job0";
        r.ok = true;
        r.attempts = 1;
        writer.append(r);
    }

    SweepOptions opts;
    opts.threads = 1;
    opts.journalPath = path;
    opts.resume = true;
    opts.tool = "unit";
    opts.shardIndex = 1;
    opts.shardCount = 2;
    SweepEngine engine(opts);
    expectIoErrorContaining([&] { (void)engine.run(jobs); },
                            {"byte", "does not own"});
}

TEST(ShardedJournal, HeaderCarriesShardCoordinates)
{
    const std::string path = tempPath("coords.journal");
    {
        JournalWriter writer(path, "unit", "deadbeef", 8, 2, 4);
    }
    const JournalData data = readJournal(path);
    EXPECT_EQ(data.shardIndex, 2u);
    EXPECT_EQ(data.shardCount, 4u);

    // Unsharded writers (and pre-sharding journals, which simply lack
    // the fields) read back as the whole-campaign shard 0/1.
    const std::string plain = tempPath("coords_plain.journal");
    {
        JournalWriter writer(plain, "unit", "deadbeef", 8);
    }
    const JournalData plainData = readJournal(plain);
    EXPECT_EQ(plainData.shardIndex, 0u);
    EXPECT_EQ(plainData.shardCount, 1u);
}

TEST(ShardedJournal, CheckResumeCompatibleValidatesShardCoords)
{
    JournalData data;
    data.signature = "deadbeef";
    data.jobCount = 4;
    data.shardIndex = 1;
    data.shardCount = 2;
    EXPECT_NO_THROW(
        checkResumeCompatible(data, "x.journal", "deadbeef", 4, 1, 2));
    EXPECT_THROW(
        checkResumeCompatible(data, "x.journal", "deadbeef", 4, 0, 2),
        BvcError);
    EXPECT_THROW(
        checkResumeCompatible(data, "x.journal", "deadbeef", 4, 1, 4),
        BvcError);
    // The 4-arg form means "the unsharded campaign".
    EXPECT_THROW(
        checkResumeCompatible(data, "x.journal", "deadbeef", 4),
        BvcError);
}

TEST(Merge, ShardedRunsReassembleTheUnshardedResults)
{
    std::atomic<std::size_t> executed{0};
    const std::vector<SweepJob> jobs = campaign(&executed);

    SweepOptions refOpts;
    refOpts.threads = 1;
    SweepEngine refEngine(refOpts);
    const std::vector<JobResult> reference = refEngine.run(jobs);
    executed.store(0);

    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 3; ++s) {
        paths.push_back(tempPath("merge_" + std::to_string(s) +
                                 ".journal"));
        (void)runShard(jobs, s, 3, paths.back());
    }
    EXPECT_EQ(executed.load(), jobs.size());

    const MergeResult merged = mergeShardJournals(paths, jobs);
    EXPECT_EQ(merged.shardCount, 3u);
    EXPECT_EQ(merged.mergedRecords, jobs.size());
    EXPECT_EQ(merged.gapFilledJobs, 0u);
    EXPECT_EQ(stableJson(jobs, merged.results),
              stableJson(jobs, reference));
}

TEST(Merge, SingleUnshardedJournalReconstructsTheCampaign)
{
    const std::vector<SweepJob> jobs = campaign();
    const std::string path = tempPath("solo.journal");
    const std::vector<JobResult> reference =
        runShard(jobs, 0, 1, path);

    const MergeResult merged = mergeShardJournals({path}, jobs);
    EXPECT_EQ(merged.shardCount, 1u);
    EXPECT_EQ(stableJson(jobs, merged.results),
              stableJson(jobs, reference));
}

TEST(Merge, RefusesAMissingShard)
{
    const std::vector<SweepJob> jobs = campaign();
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 3; ++s) {
        paths.push_back(tempPath("missing_" + std::to_string(s) +
                                 ".journal"));
        (void)runShard(jobs, s, 3, paths.back());
    }
    paths.erase(paths.begin() + 1); // lose shard 1

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals(paths, jobs); },
        {"missing shard", "shard 1"});
}

TEST(Merge, RefusesADuplicateShard)
{
    const std::vector<SweepJob> jobs = campaign();
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 2; ++s) {
        paths.push_back(tempPath("dup_" + std::to_string(s) +
                                 ".journal"));
        (void)runShard(jobs, s, 2, paths.back());
    }
    paths.push_back(paths[0]); // shard 0 supplied twice

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals(paths, jobs); },
        {"duplicate shard", "shard 0"});
}

TEST(Merge, RefusesAnOverlappingSlice)
{
    const std::vector<SweepJob> jobs = campaign();
    const std::string good = tempPath("overlap_0.journal");
    (void)runShard(jobs, 0, 2, good);

    // Forge shard 1's journal containing job 0 — shard 0's job.
    const std::string forged = tempPath("overlap_1.journal");
    {
        JournalWriter writer(forged, "unit", campaignSignature(jobs),
                             jobs.size(), 1, 2);
        JobResult r;
        r.index = 0;
        r.label = "job0";
        r.trace = "synthetic/job0";
        r.ok = true;
        r.attempts = 1;
        writer.append(r);
    }

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals({good, forged}, jobs); },
        {"overlapping slice", "byte", "owned by shard 0"});
}

TEST(Merge, RefusesAForeignCampaignSignature)
{
    const std::vector<SweepJob> jobs = campaign();
    const std::string good = tempPath("foreign_0.journal");
    (void)runShard(jobs, 0, 2, good);

    // Shard 1's journal, but from a campaign with different jobs.
    std::vector<SweepJob> other = campaign();
    other[1].label = "renamed";
    const std::string foreign = tempPath("foreign_1.journal");
    (void)runShard(other, 1, 2, foreign);

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals({good, foreign}, jobs); },
        {"foreign campaign signature", "byte 0", "shard 1/2"});
}

TEST(Merge, RefusesATornTailWithoutProvenance)
{
    const std::vector<SweepJob> jobs = campaign();
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 2; ++s) {
        paths.push_back(tempPath("torn_" + std::to_string(s) +
                                 ".journal"));
        (void)runShard(jobs, s, 2, paths.back());
    }
    // Tear shard 1's final record, as a crash mid-write would.
    const std::string content = readFile(paths[1]);
    writeFile(paths[1], content.substr(0, content.size() - 5));

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals(paths, jobs); },
        {"torn record at byte", "shard 1/2"});

    // With failure provenance for shard 1 the same journals merge,
    // gap-filling the lost job with the shard's terminal error.
    ShardError provenance;
    provenance.shardIndex = 1;
    provenance.category = ErrorCategory::Timeout;
    provenance.message = "worker killed";
    provenance.attempts = 4;
    const MergeResult merged =
        mergeShardJournals(paths, jobs, {provenance});
    EXPECT_EQ(merged.gapFilledJobs, 1u);
    const JobResult &lost = merged.results[5]; // torn tail = job 5
    EXPECT_FALSE(lost.ok);
    EXPECT_EQ(lost.errorCategory, ErrorCategory::Timeout);
    EXPECT_EQ(lost.attempts, 4u);
    EXPECT_EQ(lost.label, "job5");
    EXPECT_NE(lost.error.find("[shard 1/2]"), std::string::npos);
}

TEST(Merge, GapFillsAWhollyMissingShardWithProvenance)
{
    const std::vector<SweepJob> jobs = campaign();
    const std::string path = tempPath("gapfill_0.journal");
    (void)runShard(jobs, 0, 2, path);

    ShardError provenance;
    provenance.shardIndex = 1;
    provenance.category = ErrorCategory::Injected;
    provenance.message = "worker died from an injected fault";
    provenance.attempts = 3;
    const MergeResult merged =
        mergeShardJournals({path}, jobs, {provenance});
    EXPECT_EQ(merged.mergedRecords, 3u);
    EXPECT_EQ(merged.gapFilledJobs, 3u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i % 2 == 0) {
            EXPECT_TRUE(merged.results[i].ok) << i;
        } else {
            EXPECT_FALSE(merged.results[i].ok) << i;
            EXPECT_EQ(merged.results[i].errorCategory,
                      ErrorCategory::Injected)
                << i;
        }
    }
}

TEST(Merge, RefusesAnIncompleteHealthyShard)
{
    const std::vector<SweepJob> jobs = campaign();
    const std::string full = tempPath("incomplete_0.journal");
    (void)runShard(jobs, 0, 2, full);

    // Shard 1 journaled only its first job and stopped cleanly (no
    // torn tail): without provenance that is an incomplete campaign,
    // not a mergeable one.
    const std::string partial = tempPath("incomplete_1.journal");
    {
        JournalWriter writer(partial, "unit", campaignSignature(jobs),
                             jobs.size(), 1, 2);
        JobResult r;
        r.index = 1;
        r.label = "job1";
        r.trace = "synthetic/job1";
        r.ok = true;
        r.attempts = 1;
        writer.append(r);
    }

    expectIoErrorContaining(
        [&] { (void)mergeShardJournals({full, partial}, jobs); },
        {"incomplete shard", "job 3", "no failure provenance"});
}

TEST(SupervisorExit, ClassifiesTheTaxonomy)
{
    // glibc wait-status encoding: exit code in the second byte,
    // terminating signal in the low seven bits.
    std::string message;
    EXPECT_EQ(classifyWorkerExit(0 << 8, message),
              ErrorCategory::None);
    EXPECT_TRUE(message.empty());

    EXPECT_EQ(classifyWorkerExit(kFaultDieExitCode << 8, message),
              ErrorCategory::Injected);
    EXPECT_NE(message.find("injected"), std::string::npos);

    EXPECT_EQ(classifyWorkerExit(3 << 8, message),
              ErrorCategory::Config);
    EXPECT_NE(message.find("status 3"), std::string::npos);

    EXPECT_EQ(classifyWorkerExit(SIGKILL, message),
              ErrorCategory::Unknown);
    EXPECT_NE(message.find("signal"), std::string::npos);
}

TEST(SupervisorRun, HealthyWorkersCompleteFirstTry)
{
    std::vector<WorkerSpec> specs;
    for (std::size_t s = 0; s < 3; ++s) {
        WorkerSpec spec;
        spec.shardIndex = s;
        spec.journalPath = tempPath("sup_none_" + std::to_string(s));
        spec.freshArgv = {"/bin/sh", "-c", "exit 0"};
        spec.resumeArgv = spec.freshArgv;
        specs.push_back(std::move(spec));
    }
    Supervisor supervisor((SupervisorOptions()));
    const std::vector<ShardOutcome> outcomes = supervisor.run(specs);
    ASSERT_EQ(outcomes.size(), 3u);
    for (const ShardOutcome &o : outcomes) {
        EXPECT_TRUE(o.ok);
        EXPECT_EQ(o.attempts, 1u);
        EXPECT_EQ(o.category, ErrorCategory::None);
    }
}

TEST(SupervisorRun, RestartsACrashedWorkerFromItsJournal)
{
    // First attempt dies with the injected-fault exit code; the
    // journal file exists, so the restart takes the resume argv,
    // which succeeds. This is exactly the worker lifecycle, with
    // shell stand-ins for bvsweep.
    const std::string journal = tempPath("sup_restart.journal");
    writeFile(journal, "placeholder\n");
    WorkerSpec spec;
    spec.shardIndex = 0;
    spec.journalPath = journal;
    spec.freshArgv = {"/bin/sh", "-c", "exit 86"};
    spec.resumeArgv = {"/bin/sh", "-c", "exit 0"};

    SupervisorOptions opts;
    opts.restarts = 2;
    opts.backoffBaseSeconds = 0.01;
    opts.backoffCapSeconds = 0.02;
    Supervisor supervisor(opts);
    const std::vector<ShardOutcome> outcomes = supervisor.run({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
}

TEST(SupervisorRun, ExhaustedRestartsDegradeToProvenance)
{
    WorkerSpec spec;
    spec.shardIndex = 0;
    spec.journalPath = tempPath("sup_exhaust_missing.journal");
    spec.freshArgv = {"/bin/sh", "-c", "exit 86"};
    spec.resumeArgv = spec.freshArgv;

    SupervisorOptions opts;
    opts.restarts = 2;
    opts.backoffBaseSeconds = 0.01;
    opts.backoffCapSeconds = 0.02;
    Supervisor supervisor(opts);
    const std::vector<ShardOutcome> outcomes = supervisor.run({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 3u); // 1 launch + 2 restarts
    EXPECT_EQ(outcomes[0].category, ErrorCategory::Injected);
    EXPECT_NE(outcomes[0].message.find("exit 86"), std::string::npos);
}

TEST(SupervisorRun, OverBudgetWorkerIsKilledAndRestartable)
{
    // Unlike the in-process watchdog (whose timeouts are terminal),
    // a process-level timeout reclaims the worker with SIGKILL and
    // restarts it.
    const std::string journal = tempPath("sup_budget.journal");
    writeFile(journal, "placeholder\n");
    WorkerSpec spec;
    spec.shardIndex = 0;
    spec.journalPath = journal;
    spec.freshArgv = {"/bin/sh", "-c", "sleep 30"};
    spec.resumeArgv = {"/bin/sh", "-c", "exit 0"};

    SupervisorOptions opts;
    opts.restarts = 1;
    opts.backoffBaseSeconds = 0.01;
    opts.backoffCapSeconds = 0.02;
    opts.shardTimeoutSeconds = 0.2;
    opts.pollIntervalSeconds = 0.01;
    Supervisor supervisor(opts);
    const std::vector<ShardOutcome> outcomes = supervisor.run({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);

    // And when the budget keeps being blown, the terminal category
    // is Timeout, not an anonymous signal death.
    WorkerSpec stuck;
    stuck.shardIndex = 0;
    stuck.journalPath = tempPath("sup_budget2_missing.journal");
    stuck.freshArgv = {"/bin/sh", "-c", "sleep 30"};
    stuck.resumeArgv = stuck.freshArgv;
    SupervisorOptions opts2 = opts;
    opts2.restarts = 0;
    Supervisor supervisor2(opts2);
    const std::vector<ShardOutcome> bad = supervisor2.run({stuck});
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_FALSE(bad[0].ok);
    EXPECT_EQ(bad[0].category, ErrorCategory::Timeout);
    EXPECT_NE(bad[0].message.find("budget"), std::string::npos);
}

TEST(ShardFaultPlan, ParsesShardScopedRules)
{
    const FaultPlan plan = FaultPlan::parse(
        "die:shard=1;stall:shard=2:attempt=1:ms=250;die:job=3");
    ASSERT_EQ(plan.rules().size(), 3u);

    unsigned stallMs = 0;
    EXPECT_EQ(plan.workerStart(1, 0, stallMs), FaultKind::Die);
    EXPECT_EQ(plan.workerStart(1, 1, stallMs), FaultKind::None);
    EXPECT_EQ(plan.workerStart(2, 1, stallMs), FaultKind::Stall);
    EXPECT_EQ(stallMs, 250u);
    EXPECT_EQ(plan.workerStart(3, 0, stallMs), FaultKind::None);

    // Shard rules never leak into the job-scoped hooks, and vice
    // versa.
    EXPECT_EQ(plan.preAttempt(1, 0, stallMs), FaultKind::None);
    EXPECT_FALSE(plan.dieAtBoundary(1));
    EXPECT_TRUE(plan.dieAtBoundary(3));

    EXPECT_NE(plan.describe().find("die@shard1"), std::string::npos);
    EXPECT_NE(plan.describe().find("stall@shard2.attempt1(250ms)"),
              std::string::npos);
}

TEST(ShardFaultPlan, RejectsBadShardSpecs)
{
    const std::vector<std::string> bad = {
        "throw:shard=1",          // throw has no shard-scoped form
        "die:job=1:shard=2",      // a rule is job- or shard-scoped
        "die",                    // neither job= nor shard=
        "stall:shard=abc",        // not a number
    };
    for (const std::string &spec : bad) {
        try {
            (void)FaultPlan::parse(spec);
            FAIL() << "accepted bad spec: " << spec;
        } catch (const BvcError &e) {
            EXPECT_EQ(e.category(), ErrorCategory::Config) << spec;
        }
    }
    // die:shard=N:attempt=A is legal (process attempts ARE meaningful
    // for shard-scoped die), unlike die:job=N:attempt=A.
    EXPECT_NO_THROW((void)FaultPlan::parse("die:shard=0:attempt=2"));
}

TEST(ShardError, WithShardRendersInWhat)
{
    const BvcError e = BvcError(ErrorCategory::Io, "boom")
                           .withShard(2, 4);
    EXPECT_NE(std::string(e.what()).find("[shard 2/4]"),
              std::string::npos);
}
