/** @file Unit tests for the SC2-lite canonical-Huffman codec. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>

#include "compress/huffman.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

Line
roundTrip(const HuffmanCompressor &codec, const Line &in)
{
    const CompressedBlock block = codec.compress(in.data());
    Line out{};
    codec.decompress(block, out.data());
    return out;
}

TEST(Huffman, ZeroLineIsTiny)
{
    HuffmanCompressor codec;
    Line line{};
    // 64 x the shortest code (zero byte) packs into a few bytes.
    EXPECT_LE(codec.compress(line.data()).sizeBytes(), 10u);
    EXPECT_EQ(roundTrip(codec, line), line);
}

TEST(Huffman, ZeroByteGetsTheShortestCode)
{
    HuffmanCompressor codec;
    for (unsigned v = 1; v < 256; ++v)
        EXPECT_LE(codec.codeLength(0),
                  codec.codeLength(static_cast<std::uint8_t>(v)));
}

TEST(Huffman, CodeLengthsAreBounded)
{
    HuffmanCompressor codec;
    for (unsigned v = 0; v < 256; ++v) {
        EXPECT_GE(codec.codeLength(static_cast<std::uint8_t>(v)), 1u);
        EXPECT_LE(codec.codeLength(static_cast<std::uint8_t>(v)), 24u);
    }
}

TEST(Huffman, KraftEqualityHolds)
{
    // A complete Huffman code satisfies sum(2^-len) == 1.
    HuffmanCompressor codec;
    double kraft = 0.0;
    for (unsigned v = 0; v < 256; ++v)
        kraft += std::pow(
            2.0, -static_cast<double>(
                     codec.codeLength(static_cast<std::uint8_t>(v))));
    EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(Huffman, SmallValueDataCompressesWell)
{
    HuffmanCompressor codec;
    Line line{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = i % 5; // tiny values + zero padding
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    EXPECT_LT(codec.compress(line.data()).sizeBytes(), kLineBytes / 3);
    EXPECT_EQ(roundTrip(codec, line), line);
}

TEST(Huffman, RandomDataFallsBackVerbatim)
{
    HuffmanCompressor codec;
    Rng rng(9);
    Line line{};
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.range(255) + 1);
    const CompressedBlock block = codec.compress(line.data());
    EXPECT_LE(block.sizeBytes(), kLineBytes);
    EXPECT_EQ(roundTrip(codec, line), line);
}

TEST(Huffman, RoundTripsEveryDataPattern)
{
    HuffmanCompressor codec;
    const DataPatternKind kinds[] = {
        DataPatternKind::Zeros,      DataPatternKind::SmallInts,
        DataPatternKind::PointerHeap, DataPatternKind::NarrowInts,
        DataPatternKind::Floats,     DataPatternKind::Random,
        DataPatternKind::MixedGood,  DataPatternKind::MixedPoor,
    };
    Line line{};
    for (const auto kind : kinds) {
        const DataPattern pattern(kind, 33);
        for (Addr blk = 0; blk < 300 * kLineBytes; blk += kLineBytes) {
            pattern.fillLine(blk, line.data());
            ASSERT_EQ(roundTrip(codec, line), line)
                << DataPattern::kindName(kind);
        }
    }
}

TEST(Huffman, SampledTableBeatsDefaultOnItsDistribution)
{
    // SC2's point: a table sampled from the workload compresses that
    // workload at least as well as a generic one.
    const DataPattern pattern(DataPatternKind::PointerHeap, 55);
    const auto sampled = HuffmanCompressor::sampleFrequencies(
        [&](Addr blk, std::uint8_t *out) { pattern.fillLine(blk, out); },
        512);
    HuffmanCompressor tuned(sampled);
    HuffmanCompressor generic;

    std::uint64_t tunedBytes = 0, genericBytes = 0;
    Line line{};
    for (Addr blk = 0; blk < 500 * kLineBytes; blk += kLineBytes) {
        pattern.fillLine(blk, line.data());
        tunedBytes += tuned.compress(line.data()).sizeBytes();
        genericBytes += generic.compress(line.data()).sizeBytes();
        ASSERT_EQ(roundTrip(tuned, line), line);
    }
    EXPECT_LE(tunedBytes, genericBytes);
}

TEST(Huffman, ExtremeSkewStillBuildsBoundedCode)
{
    HuffmanCompressor::FrequencyTable freq{};
    freq[0] = 1ULL << 60; // pathological skew forces depth capping
    freq[1] = 1;
    HuffmanCompressor codec(freq);
    for (unsigned v = 0; v < 256; ++v)
        EXPECT_LE(codec.codeLength(static_cast<std::uint8_t>(v)), 24u);
    Line line{};
    line[5] = 200;
    line[17] = 13;
    EXPECT_EQ(roundTrip(codec, line), line);
}

TEST(Huffman, DecompressionLatencyAboveBdi)
{
    HuffmanCompressor codec;
    EXPECT_EQ(codec.decompressionCycles(0), 0u);
    EXPECT_EQ(codec.decompressionCycles(kSegmentsPerLine), 0u);
    EXPECT_GT(codec.decompressionCycles(8), 2u);
}

} // namespace
} // namespace bvc
