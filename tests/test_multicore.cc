/** @file Tests for the 4-core shared-LLC system (Section VI.C). */

#include <gtest/gtest.h>

#include "sim/multicore.hh"
#include "trace/workload_suite.hh"

namespace bvc
{
namespace
{

std::array<TraceParams, 4>
quickMix()
{
    const WorkloadSuite suite;
    const auto mix = suite.mixes(1).front();
    return {suite.all()[mix[0]].params, suite.all()[mix[1]].params,
            suite.all()[mix[2]].params, suite.all()[mix[3]].params};
}

TEST(MultiCore, AllThreadsRetireTheirWindow)
{
    MultiCoreSystem system(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult result = system.run(5000, 20000);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GE(result.instructions[i], 20000u) << "thread " << i;
        EXPECT_GT(result.ipc[i], 0.0) << "thread " << i;
    }
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    MultiCoreSystem a(SystemConfig::benchDefaults(), quickMix());
    MultiCoreSystem b(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult ra = a.run(5000, 15000);
    const MultiRunResult rb = b.run(5000, 15000);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(ra.ipc[i], rb.ipc[i]);
    EXPECT_EQ(ra.dramReads, rb.dramReads);
}

TEST(MultiCore, WeightedSpeedupOfSelfIsOne)
{
    MultiCoreSystem a(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult r = a.run(5000, 15000);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup(r), 1.0);
}

TEST(MultiCore, SharedLlcContentionReducesIpc)
{
    // Run one thread's trace alone (single-core) vs inside a 4-way mix
    // with a shared LLC: contention must not increase its IPC.
    const auto mix = quickMix();
    SystemConfig cfg = SystemConfig::benchDefaults();

    System alone(cfg, mix[0]);
    const RunResult solo = alone.run(5000, 20000);

    MultiCoreSystem shared(cfg, mix);
    const MultiRunResult together = shared.run(5000, 20000);
    EXPECT_LE(together.ipc[0], solo.ipc * 1.05);
}

TEST(MultiCore, BaseVictimImprovesWeightedSpeedup)
{
    const auto mix = quickMix();
    SystemConfig base = SystemConfig::benchDefaults();
    base.llcBytes = 1024 * 1024; // "4MB" analog for 4 threads
    SystemConfig bv = base;
    bv.arch = LlcArch::BaseVictim;

    MultiCoreSystem baseSys(base, mix);
    const MultiRunResult rb = baseSys.run(10000, 30000);
    MultiCoreSystem bvSys(bv, mix);
    const MultiRunResult rv = bvSys.run(10000, 30000);

    EXPECT_GT(rv.weightedSpeedup(rb), 0.99);
    // Hit-rate guarantee holds for the whole mix (Section VI.C).
    EXPECT_LE(rv.llcDemandMisses, rb.llcDemandMisses);
}

TEST(MultiCore, WarmupResetsPerCoreStatGroups)
{
    // run() must reset every per-core StatGroup at the measurement
    // boundary, exactly like System::run does for its single core.
    // With warmup >> measure, leaked warmup traffic makes the per-core
    // loads+stores counters exceed the instructions retired in the
    // measured window — an impossibility when the reset is in place,
    // since every load/store is one retired instruction and both
    // counters restart together at beginMeasurement().
    MultiCoreSystem system(SystemConfig::benchDefaults(), quickMix());
    system.run(40000, 10000);
    for (std::size_t i = 0; i < 4; ++i) {
        const std::uint64_t memOps =
            system.core(CoreId{i}).stats().get("loads") +
            system.core(CoreId{i}).stats().get("stores");
        EXPECT_LE(memOps, system.core(CoreId{i}).result().instructions)
            << "thread " << i
            << ": warmup counters leaked into the measured window";
    }
}

TEST(MultiCore, ThreadsUseDisjointAddressSlices)
{
    const auto mix = quickMix();
    MultiCoreSystem system(SystemConfig::benchDefaults(), mix);
    system.run(2000, 5000);
    // No thread's private caches may hold another slice's lines; the
    // per-thread hierarchies are bound to per-thread memories, so a
    // cross-slice line would have failed inclusion checks. Spot-check
    // that per-core L1 contents differ in their slice bits.
    for (std::size_t i = 0; i < 4; ++i) {
        bool sawOwnSlice = false;
        system.hierarchy(CoreId{i}).l1d().forEachLine(
            [&](const CacheLine &line) {
                if ((line.tag >> 42) == i + 1)
                    sawOwnSlice = true;
                EXPECT_EQ(line.tag >> 42, i + 1);
            });
        EXPECT_TRUE(sawOwnSlice);
    }
}

} // namespace
} // namespace bvc
