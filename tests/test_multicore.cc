/** @file Tests for the N-core shared-LLC system (Section VI.C). */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/uncompressed_llc.hh"
#include "sim/multicore.hh"
#include "trace/workload_suite.hh"

namespace bvc
{
namespace
{

std::array<TraceParams, 4>
quickMix()
{
    const WorkloadSuite suite;
    const auto mix = suite.mixes(1).front();
    return {suite.all()[mix[0]].params, suite.all()[mix[1]].params,
            suite.all()[mix[2]].params, suite.all()[mix[3]].params};
}

/** One N-way mix of cache-sensitive traces from the suite. */
std::vector<TraceParams>
quickMixN(std::size_t cores)
{
    const WorkloadSuite suite;
    const auto mix = suite.mixesN(cores, 1).front();
    std::vector<TraceParams> out;
    out.reserve(cores);
    for (const std::size_t idx : mix)
        out.push_back(suite.all()[idx].params);
    return out;
}

TEST(MultiCore, AllThreadsRetireTheirWindow)
{
    MultiCoreSystem system(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult result = system.run(5000, 20000);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GE(result.instructions[i], 20000u) << "thread " << i;
        EXPECT_GT(result.ipc[i], 0.0) << "thread " << i;
    }
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    MultiCoreSystem a(SystemConfig::benchDefaults(), quickMix());
    MultiCoreSystem b(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult ra = a.run(5000, 15000);
    const MultiRunResult rb = b.run(5000, 15000);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(ra.ipc[i], rb.ipc[i]);
    EXPECT_EQ(ra.dramReads, rb.dramReads);
}

TEST(MultiCore, WeightedSpeedupOfSelfIsOne)
{
    MultiCoreSystem a(SystemConfig::benchDefaults(), quickMix());
    const MultiRunResult r = a.run(5000, 15000);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup(r), 1.0);
}

TEST(MultiCore, SharedLlcContentionReducesIpc)
{
    // Run one thread's trace alone (single-core) vs inside a 4-way mix
    // with a shared LLC: contention must not increase its IPC.
    const auto mix = quickMix();
    SystemConfig cfg = SystemConfig::benchDefaults();

    System alone(cfg, mix[0]);
    const RunResult solo = alone.run(5000, 20000);

    MultiCoreSystem shared(cfg, mix);
    const MultiRunResult together = shared.run(5000, 20000);
    EXPECT_LE(together.ipc[0], solo.ipc * 1.05);
}

TEST(MultiCore, BaseVictimImprovesWeightedSpeedup)
{
    const auto mix = quickMix();
    SystemConfig base = SystemConfig::benchDefaults();
    base.llcBytes = 1024 * 1024; // "4MB" analog for 4 threads
    SystemConfig bv = base;
    bv.arch = LlcArch::BaseVictim;

    MultiCoreSystem baseSys(base, mix);
    const MultiRunResult rb = baseSys.run(10000, 30000);
    MultiCoreSystem bvSys(bv, mix);
    const MultiRunResult rv = bvSys.run(10000, 30000);

    EXPECT_GT(rv.weightedSpeedup(rb), 0.99);
    // Hit-rate guarantee holds for the whole mix (Section VI.C).
    EXPECT_LE(rv.llcDemandMisses, rb.llcDemandMisses);
}

TEST(MultiCore, WarmupResetsPerCoreStatGroups)
{
    // run() must reset every per-core StatGroup at the measurement
    // boundary, exactly like System::run does for its single core.
    // With warmup >> measure, leaked warmup traffic makes the per-core
    // loads+stores counters exceed the instructions retired in the
    // measured window — an impossibility when the reset is in place,
    // since every load/store is one retired instruction and both
    // counters restart together at beginMeasurement().
    MultiCoreSystem system(SystemConfig::benchDefaults(), quickMix());
    system.run(40000, 10000);
    for (std::size_t i = 0; i < 4; ++i) {
        const std::uint64_t memOps =
            system.core(CoreId{i}).stats().get("loads") +
            system.core(CoreId{i}).stats().get("stores");
        EXPECT_LE(memOps, system.core(CoreId{i}).result().instructions)
            << "thread " << i
            << ": warmup counters leaked into the measured window";
    }
}

TEST(MultiCore, ThreadsUseDisjointAddressSlices)
{
    const auto mix = quickMix();
    MultiCoreSystem system(SystemConfig::benchDefaults(), mix);
    system.run(2000, 5000);
    // No thread's private caches may hold another slice's lines; the
    // per-thread hierarchies are bound to per-thread memories, so a
    // cross-slice line would have failed inclusion checks. Spot-check
    // that per-core L1 contents differ in their slice bits.
    for (std::size_t i = 0; i < 4; ++i) {
        bool sawOwnSlice = false;
        system.hierarchy(CoreId{i}).l1d().forEachLine(
            [&](const CacheLine &line) {
                if ((line.tag >> 42) == i + 1)
                    sawOwnSlice = true;
                EXPECT_EQ(line.tag >> 42, i + 1);
            });
        EXPECT_TRUE(sawOwnSlice);
    }
}

TEST(MultiCoreDeathTest, WeightedSpeedupRejectsCoreCountMismatch)
{
    // The satellite-1 bugfix: comparing runs of different core counts
    // used to walk base.ipc out of bounds; it must panic instead.
    MultiRunResult two;
    two.ipc = {1.0, 1.0};
    MultiRunResult one;
    one.ipc = {1.0};
    EXPECT_DEATH(two.weightedSpeedup(one), "core-count mismatch");
}

TEST(MultiCore, BackInvalidationWritesBackOncePerLine)
{
    // Pins the fan-out accounting the coherence layer builds on: when
    // an LLC eviction back-invalidates a line that is dirty in SEVERAL
    // private hierarchies, exactly one memory write happens — the
    // fan-out ORs per-hierarchy dirtiness into one bool, it does not
    // emit one writeback per hierarchy.
    UncompressedLlc llc(512, 2, ReplacementKind::Lru); // 4 sets x 2 ways
    Dram dram;
    FunctionalMemory mem0;
    FunctionalMemory mem1;
    HierarchyConfig tiny;
    tiny.l1iBytes = tiny.l1dBytes = tiny.l2Bytes = 256; // 2 sets x 2 ways
    tiny.l1iWays = tiny.l1dWays = tiny.l2Ways = 2;
    tiny.prefetch = false;
    Hierarchy h0(tiny, llc, dram, mem0);
    Hierarchy h1(tiny, llc, dram, mem1);
    for (Hierarchy *h : {&h0, &h1}) {
        h->setBackInvalidateFn([&](Addr blk) {
            bool dirty = h0.invalidateUpper(blk);
            dirty = h1.invalidateUpper(blk) || dirty;
            return dirty;
        });
    }

    // Both cores dirty line 0 in their private caches.
    h0.store(0x100, 0, 1, 1);
    h1.store(0x100, 0, 2, 2);
    ASSERT_EQ(dram.stats().get("writes"), 0u);

    // Two more lines in LLC set 0 (4-set LLC: stride 256) evict line 0
    // from the 2-way set; the back-invalidation finds dirty copies in
    // both hierarchies.
    h0.load(0x100, 256, 3);
    h0.load(0x100, 512, 4);
    EXPECT_FALSE(llc.probe(0));
    EXPECT_EQ(dram.stats().get("writes"), 1u)
        << "a multi-hierarchy dirty back-invalidation must cost one "
           "memory write, not one per hierarchy";
    EXPECT_EQ(h0.stats().get("back_inval_writebacks") +
                  h1.stats().get("back_inval_writebacks"),
              1u);
}

TEST(MultiCore, MsiInvalidatesRemoteCopiesOnSharedWrites)
{
    // Two cores in ONE address space under MSI: overlapping footprints
    // with a store fraction must generate real directory traffic.
    SystemConfig cfg = SystemConfig::benchDefaults();
    MultiCoreConfig mc;
    mc.coherence = CoherenceKind::Msi;
    mc.sharedAddressSpace = true;
    MultiCoreSystem system(cfg, quickMixN(2), mc);
    ASSERT_NE(system.directory(), nullptr);
    system.run(2000, 10000);

    const StatGroup &ds = system.directory()->stats();
    EXPECT_GT(ds.get("reads"), 0u);
    EXPECT_GT(ds.get("writes"), 0u);
    EXPECT_GT(ds.get("invalidations_sent"), 0u)
        << "shared-space mixes must actually contend for lines";
    // Coherence keeps inclusion intact in every private hierarchy.
    for (std::size_t i = 0; i < system.numCores(); ++i)
        EXPECT_TRUE(system.hierarchy(CoreId{i}).checkInclusion());
}

TEST(MultiCore, MesiGrantsExclusiveOnPrivateData)
{
    // Disjoint-slice traces under MESI: every first read is the sole
    // reader, so exclusive grants dominate and silent E->M upgrades
    // replace invalidation traffic entirely.
    SystemConfig cfg = SystemConfig::benchDefaults();
    MultiCoreConfig mc;
    mc.coherence = CoherenceKind::Mesi;
    MultiCoreSystem system(cfg, quickMixN(4), mc);
    system.run(2000, 10000);

    const StatGroup &ds = system.directory()->stats();
    EXPECT_GT(ds.get("exclusive_grants"), 0u);
    EXPECT_GT(ds.get("silent_upgrades"), 0u);
    EXPECT_EQ(ds.get("invalidations_sent"), 0u)
        << "disjoint slices share no lines, so MESI must never "
           "invalidate";
}

TEST(MultiCore, SixteenCoreCoherentRunCompletesUnderCheck)
{
    // The acceptance run: 16 coherent cores in a shared address space
    // over a 4-bank Base-Victim LLC, every bank wrapped by the lockstep
    // shadow checker (BVC_CHECK=1). The default fail handler aborts on
    // any divergence, so completing the run IS the zero-divergence
    // assertion — including under an external snoop storm.
    const char *prev = std::getenv("BVC_CHECK");
    const std::string saved = prev ? prev : "";
    setenv("BVC_CHECK", "1", 1);

    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    cfg.llcBanks = 4;
    MultiCoreConfig mc;
    mc.coherence = CoherenceKind::Msi;
    mc.sharedAddressSpace = true;
    {
        MultiCoreSystem system(cfg, quickMixN(16), mc);
        const MultiRunResult result = system.run(1000, 3000);
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_GT(result.ipc[i], 0.0) << "core " << i;

        // Snoop every line core 0's L1D holds: inclusive LLC, so each
        // must hit the checked coherenceInvalidate path.
        std::vector<Addr> resident;
        system.hierarchy(CoreId{0}).l1d().forEachLine(
            [&](const CacheLine &line) { resident.push_back(line.tag); });
        ASSERT_FALSE(resident.empty());
        for (const Addr blk : resident)
            system.snoopInvalidate(blk);
        EXPECT_GE(system.llc().stats().get("coherence_invalidations"),
                  resident.size());
        for (const Addr blk : resident)
            EXPECT_FALSE(system.llc().probe(blk));
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_TRUE(system.hierarchy(CoreId{i}).checkInclusion());
    }

    if (prev)
        setenv("BVC_CHECK", saved.c_str(), 1);
    else
        unsetenv("BVC_CHECK");
}

TEST(MultiCore, SixtyFourCoreRunCompletes)
{
    // The directory's one-word sharer mask tops out at 64 cores; the
    // largest configuration must construct and run end to end.
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.llcBanks = 8;
    MultiCoreConfig mc;
    mc.coherence = CoherenceKind::Msi;
    mc.sharedAddressSpace = true;
    MultiCoreSystem system(cfg, quickMixN(64), mc);
    EXPECT_EQ(system.numCores(), 64u);
    const MultiRunResult result = system.run(200, 500);
    EXPECT_EQ(result.ipc.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_GT(result.ipc[i], 0.0) << "core " << i;
}

} // namespace
} // namespace bvc
