/**
 * @file
 * TraceSource::reset() contract property test: for EVERY trace source
 * in the project — each generator of the 100-trace workload suite and
 * the file-backed replayer in both decode modes — reset() must replay
 * a byte-identical stream from the first record, including after a
 * partial read and across repeated resets. Replacement-policy sampling
 * and the sweep engine's retry path both lean on this.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/generators.hh"
#include "trace/workload_suite.hh"
#include "tracefile/bvt_writer.hh"
#include "tracefile/file_trace_source.hh"

namespace bvc
{
namespace
{

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.pc == b.pc && a.addr == b.addr && a.value == b.value &&
           a.kind == b.kind &&
           a.dependsOnPrevLoad == b.dependsOnPrevLoad;
}

/**
 * Drain `count` records, reset, and require the replay to match;
 * then reset mid-stream and check the prefix again.
 */
void
checkResetContract(TraceSource &source, std::size_t count)
{
    std::vector<TraceRecord> first;
    first.reserve(count);
    TraceRecord r;
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_TRUE(source.next(r)) << source.name() << " record " << i;
        first.push_back(r);
    }

    source.reset();
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_TRUE(source.next(r)) << source.name() << " record " << i;
        ASSERT_TRUE(sameRecord(r, first[i]))
            << source.name() << " diverged at record " << i
            << " after reset()";
    }

    // Reset from the middle of a stream (and of a decoded block).
    source.reset();
    for (std::size_t i = 0; i < count / 3 + 1; ++i)
        ASSERT_TRUE(source.next(r));
    source.reset();
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_TRUE(source.next(r));
        ASSERT_TRUE(sameRecord(r, first[i]))
            << source.name() << " diverged at record " << i
            << " after mid-stream reset()";
    }
}

TEST(TraceResetContract, EverySuiteGeneratorReplaysIdentically)
{
    const WorkloadSuite suite(512 * 1024);
    ASSERT_FALSE(suite.all().empty());
    for (const WorkloadInfo &info : suite.all()) {
        SyntheticTrace trace(info.params);
        checkResetContract(trace, 1500);
    }
}

TEST(TraceResetContract, FileTraceSourceBothDecodeModes)
{
    const WorkloadSuite suite(512 * 1024);
    const TraceParams &params = suite.all().front().params;
    const std::string path = ::testing::TempDir() + "reset_unit.bvt";
    {
        SyntheticTrace trace(params);
        BvtTraceMeta meta;
        meta.name = params.name;
        // Small blocks so the reset paths cross many block boundaries.
        ASSERT_EQ(writeBvt(path, trace, 4000, meta, 128), 4000u);
    }
    for (const bool decodeAhead : {false, true}) {
        FileTraceOptions opts;
        opts.decodeAhead = decodeAhead;
        opts.aheadBlocks = 2;
        FileTraceSource source(path, opts);
        checkResetContract(source, 4000);
    }
}

TEST(TraceResetContract, LoopingFileSourceResetsToRecordZero)
{
    const WorkloadSuite suite(512 * 1024);
    const TraceParams &params = suite.all().front().params;
    const std::string path = ::testing::TempDir() + "reset_loop.bvt";
    {
        SyntheticTrace trace(params);
        BvtTraceMeta meta;
        meta.name = params.name;
        ASSERT_EQ(writeBvt(path, trace, 600, meta, 128), 600u);
    }
    FileTraceOptions opts;
    opts.decodeAhead = true;
    opts.loopReplay = true;
    FileTraceSource source(path, opts);
    // 1.5 laps in, reset() must return to record zero, not lap start.
    checkResetContract(source, 900);
}

} // namespace
} // namespace bvc
