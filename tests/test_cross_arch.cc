/**
 * @file
 * Cross-architecture property tests: sanity invariants every LLC
 * organization must satisfy under identical access streams, plus the
 * ordering relations the paper's Section VI results rest on.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>

#include "compress/bdi.hh"
#include "sim/system.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

constexpr std::size_t kSize = 32 * 1024;
constexpr std::size_t kWays = 8;

std::unique_ptr<Llc>
makeArch(LlcArch arch, const Compressor &comp)
{
    SystemConfig cfg;
    cfg.llcBytes = kSize;
    cfg.llcWays = kWays;
    cfg.arch = arch;
    cfg.llcRepl = ReplacementKind::Nru;
    return makeLlc(cfg, comp);
}

class ArchProperty : public ::testing::TestWithParam<LlcArch>
{
  protected:
    BdiCompressor bdi_;
};

TEST_P(ArchProperty, AccessedLineIsImmediatelyResident)
{
    auto llc = makeArch(GetParam(), bdi_);
    const DataPattern pattern(DataPatternKind::MixedGood, 4);
    Rng rng(11);
    std::array<std::uint8_t, kLineBytes> line{};
    for (int step = 0; step < 5000; ++step) {
        const Addr blk = rng.range(2048) * kLineBytes;
        pattern.fillLine(blk, line.data());
        llc->access(blk, AccessType::Read, line.data());
        ASSERT_TRUE(llc->probe(blk)) << llc->name() << " step " << step;
    }
}

TEST_P(ArchProperty, NoPhantomHits)
{
    auto llc = makeArch(GetParam(), bdi_);
    const DataPattern pattern(DataPatternKind::MixedGood, 5);
    Rng rng(12);
    std::array<std::uint8_t, kLineBytes> line{};
    std::set<Addr> touched;
    for (int step = 0; step < 5000; ++step) {
        const Addr blk = rng.range(4096) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const LlcResult r = llc->access(blk, AccessType::Read,
                                        line.data());
        if (r.hit) {
            ASSERT_TRUE(touched.count(blk))
                << llc->name() << " hit on never-touched line";
        }
        touched.insert(blk);
    }
}

TEST_P(ArchProperty, DemandStatsAreConsistent)
{
    auto llc = makeArch(GetParam(), bdi_);
    const DataPattern pattern(DataPatternKind::MixedGood, 6);
    Rng rng(13);
    std::array<std::uint8_t, kLineBytes> line{};
    for (int step = 0; step < 8000; ++step) {
        const Addr blk = rng.range(2048) * kLineBytes;
        pattern.fillLine(blk, line.data());
        llc->access(blk, AccessType::Read, line.data());
    }
    const StatGroup &stats = llc->stats();
    EXPECT_EQ(stats.get("demand_hits") + stats.get("demand_misses"),
              stats.get("demand_accesses"))
        << llc->name();
}

TEST_P(ArchProperty, DeterministicAcrossInstances)
{
    auto a = makeArch(GetParam(), bdi_);
    auto b = makeArch(GetParam(), bdi_);
    const DataPattern pattern(DataPatternKind::MixedGood, 7);
    Rng rng(14);
    std::array<std::uint8_t, kLineBytes> line{};
    for (int step = 0; step < 5000; ++step) {
        const Addr blk = rng.range(2048) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const LlcResult ra = a->access(blk, AccessType::Read,
                                       line.data());
        const LlcResult rb = b->access(blk, AccessType::Read,
                                       line.data());
        ASSERT_EQ(ra.hit, rb.hit) << a->name();
        ASSERT_EQ(ra.memWritebacks, rb.memWritebacks);
        ASSERT_EQ(ra.backInvalidations, rb.backInvalidations);
    }
    EXPECT_EQ(a->validLines(), b->validLines());
}

TEST_P(ArchProperty, ValidLinesNeverExceedTagCapacity)
{
    auto llc = makeArch(GetParam(), bdi_);
    const DataPattern pattern(DataPatternKind::MixedGood, 8);
    Rng rng(15);
    std::array<std::uint8_t, kLineBytes> line{};
    const std::size_t physicalLines = kSize / kLineBytes;
    // Every organization here has at most 2x tags (DCC: 4 sub-blocks
    // per super-block tag -> up to 4x).
    const std::size_t tagLimit = GetParam() == LlcArch::Dcc
        ? 4 * physicalLines
        : 2 * physicalLines;
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = rng.range(4096) * kLineBytes;
        pattern.fillLine(blk, line.data());
        llc->access(blk, AccessType::Read, line.data());
        if (step % 2000 == 0) {
            ASSERT_LE(llc->validLines(), tagLimit) << llc->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchProperty,
    ::testing::Values(LlcArch::Uncompressed, LlcArch::TwoTagNaive,
                      LlcArch::TwoTagModified, LlcArch::BaseVictim,
                      LlcArch::Vsc, LlcArch::Dcc),
    [](const ::testing::TestParamInfo<LlcArch> &info) {
        std::string name = llcArchName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ArchOrdering, CompressedArchesHoldAtLeastAsManyLines)
{
    // On compressible data, every compressed organization must retain
    // at least as many lines as the uncompressed cache once warm.
    const BdiCompressor bdi;
    auto unc = makeArch(LlcArch::Uncompressed, bdi);
    auto bv = makeArch(LlcArch::BaseVictim, bdi);
    auto vsc = makeArch(LlcArch::Vsc, bdi);
    const DataPattern pattern(DataPatternKind::SmallInts, 9);
    Rng rng(16);
    std::array<std::uint8_t, kLineBytes> line{};
    for (int step = 0; step < 30000; ++step) {
        const Addr blk = rng.range(4096) * kLineBytes;
        pattern.fillLine(blk, line.data());
        unc->access(blk, AccessType::Read, line.data());
        bv->access(blk, AccessType::Read, line.data());
        vsc->access(blk, AccessType::Read, line.data());
    }
    EXPECT_GE(bv->validLines(), unc->validLines());
    EXPECT_GE(vsc->validLines(), unc->validLines());
}

TEST(ArchOrdering, BaseVictimHitsSupersetHoldsWhereTwoTagDoesNot)
{
    // The central claim of Section III/IV: the two-tag schemes can
    // lose baseline hits; Base-Victim cannot. Drive all three with a
    // stream combining hot reuse + compressible churn and compare
    // against the uncompressed reference.
    const BdiCompressor bdi;
    auto unc = makeArch(LlcArch::Uncompressed, bdi);
    auto naive = makeArch(LlcArch::TwoTagNaive, bdi);
    auto bv = makeArch(LlcArch::BaseVictim, bdi);
    const DataPattern pattern(DataPatternKind::MixedGood, 10);
    Rng rng(17);
    std::array<std::uint8_t, kLineBytes> line{};
    std::uint64_t naiveLostHits = 0;
    for (int step = 0; step < 60000; ++step) {
        const Addr blk = rng.chance(0.6)
            ? rng.range(400) * kLineBytes           // hot set
            : (1000 + rng.range(8192)) * kLineBytes; // churn
        pattern.fillLine(blk, line.data());
        const bool uncHit =
            unc->access(blk, AccessType::Read, line.data()).hit;
        const bool naiveHit =
            naive->access(blk, AccessType::Read, line.data()).hit;
        const bool bvHit =
            bv->access(blk, AccessType::Read, line.data()).hit;
        if (uncHit) {
            ASSERT_TRUE(bvHit) << "Base-Victim lost a baseline hit";
            naiveLostHits += !naiveHit;
        }
    }
    // The naive scheme demonstrably loses baseline hits (the paper's
    // negative interaction); Base-Victim never does (asserted above).
    EXPECT_GT(naiveLostHits, 0u);
}

} // namespace
} // namespace bvc
