/** @file Unit tests for the FPC codec. */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "compress/fpc.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

Line
lineOf32(const std::uint32_t (&words)[16])
{
    Line line{};
    for (unsigned i = 0; i < 16; ++i)
        std::memcpy(line.data() + 4 * i, &words[i], 4);
    return line;
}

Line
roundTrip(const FpcCompressor &fpc, const Line &in)
{
    const CompressedBlock block = fpc.compress(in.data());
    Line out{};
    fpc.decompress(block, out.data());
    return out;
}

TEST(Fpc, ZeroLineCompressesToRuns)
{
    FpcCompressor fpc;
    Line line{};
    const CompressedBlock block = fpc.compress(line.data());
    // 16 zero words = two runs of 8 = 2 x 6 bits -> 2 bytes.
    EXPECT_EQ(block.sizeBytes(), 2u);
    EXPECT_EQ(roundTrip(fpc, line), line);
}

TEST(Fpc, SmallSignedValues)
{
    FpcCompressor fpc;
    Line line = lineOf32({1, 0xFFFFFFFFu /* -1 */, 7, 0xFFFFFFF9u /* -7 */,
                          3, 2, 1, 0, 5, 6, 7, 4, 3, 2, 1, 0});
    EXPECT_EQ(roundTrip(fpc, line), line);
    // All words fit 4-bit sign-extended (or zero runs): tiny output.
    EXPECT_LE(fpc.compress(line.data()).sizeBytes(), 16u);
}

TEST(Fpc, HalfwordPaddedWithZeros)
{
    FpcCompressor fpc;
    Line line = lineOf32({0x12340000u, 0xabcd0000u, 0x00010000u,
                          0xffff0000u, 0x12340000u, 0xabcd0000u,
                          0x00010000u, 0xffff0000u, 0x12340000u,
                          0xabcd0000u, 0x00010000u, 0xffff0000u,
                          0x12340000u, 0xabcd0000u, 0x00010000u,
                          0xffff0000u});
    EXPECT_EQ(roundTrip(fpc, line), line);
    // 3+16 bits per word -> ~38 bytes, clearly compressed.
    EXPECT_LT(fpc.compress(line.data()).sizeBytes(), kLineBytes / 2 + 8);
}

TEST(Fpc, RepeatedBytesPattern)
{
    FpcCompressor fpc;
    Line line = lineOf32({0x77777777u, 0xabababab, 0x11111111u,
                          0xcccccccc, 0x77777777u, 0xabababab,
                          0x11111111u, 0xcccccccc, 0x77777777u,
                          0xabababab, 0x11111111u, 0xcccccccc,
                          0x77777777u, 0xabababab, 0x11111111u,
                          0xcccccccc});
    EXPECT_EQ(roundTrip(fpc, line), line);
    // 3+8 bits per word -> 22 bytes.
    EXPECT_EQ(fpc.compress(line.data()).sizeBytes(), 22u);
}

TEST(Fpc, TwoHalfwordsSignExtended)
{
    FpcCompressor fpc;
    // Each halfword fits in 8 signed bits: pattern TwoSign8.
    Line line = lineOf32({0x007f0012u, 0xff80ffffu, 0x00010002u,
                          0x00400055u, 0x007f0012u, 0xff80ffffu,
                          0x00010002u, 0x00400055u, 0x007f0012u,
                          0xff80ffffu, 0x00010002u, 0x00400055u,
                          0x007f0012u, 0xff80ffffu, 0x00010002u,
                          0x00400055u});
    EXPECT_EQ(roundTrip(fpc, line), line);
}

TEST(Fpc, IncompressibleFallsBackToVerbatim)
{
    FpcCompressor fpc;
    Rng rng(123);
    Line line{};
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.range(256) | 1);
    const CompressedBlock block = fpc.compress(line.data());
    EXPECT_LE(block.sizeBytes(), kLineBytes);
    EXPECT_EQ(roundTrip(fpc, line), line);
}

TEST(Fpc, RandomRoundTripFuzz)
{
    FpcCompressor fpc;
    Rng rng(5);
    Line line{};
    for (int trial = 0; trial < 300; ++trial) {
        for (auto &byte : line) {
            // Mix of zeros and random bytes exercises all patterns.
            byte = rng.chance(0.4)
                ? 0
                : static_cast<std::uint8_t>(rng.range(256));
        }
        EXPECT_EQ(roundTrip(fpc, line), line);
        EXPECT_LE(fpc.compress(line.data()).sizeBytes(), kLineBytes);
    }
}

} // namespace
} // namespace bvc
