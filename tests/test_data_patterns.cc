/** @file Tests for the compressibility-controlled data patterns. */

#include <gtest/gtest.h>

#include <array>

#include "compress/bdi.hh"
#include "sim/experiment.hh"
#include "trace/data_patterns.hh"

namespace bvc
{
namespace
{

double
avgFraction(DataPatternKind kind)
{
    const DataPattern pattern(kind, 42);
    const BdiCompressor bdi;
    return averageCompressedFraction(pattern, bdi, 2000);
}

TEST(DataPatterns, ZerosCompressToNothing)
{
    EXPECT_LT(avgFraction(DataPatternKind::Zeros), 0.05);
}

TEST(DataPatterns, SmallIntsCompressWell)
{
    const double f = avgFraction(DataPatternKind::SmallInts);
    EXPECT_GT(f, 0.15);
    EXPECT_LT(f, 0.40);
}

TEST(DataPatterns, PointerHeapCompressesModerately)
{
    const double f = avgFraction(DataPatternKind::PointerHeap);
    EXPECT_GT(f, 0.50);
    EXPECT_LT(f, 0.75);
}

TEST(DataPatterns, FloatsAndRandomDoNotCompress)
{
    EXPECT_GT(avgFraction(DataPatternKind::Floats), 0.95);
    EXPECT_GT(avgFraction(DataPatternKind::Random), 0.95);
}

TEST(DataPatterns, MixedGoodAveragesNearHalf)
{
    // The paper's compression-friendly traces average ~50% of the
    // uncompressed size (Section VI.A).
    const double f = avgFraction(DataPatternKind::MixedGood);
    EXPECT_GT(f, 0.38);
    EXPECT_LT(f, 0.60);
}

TEST(DataPatterns, MixedPoorAveragesAboveThreeQuarters)
{
    // The 10 poorly-compressing traces sit above 75% (Section VI.A).
    EXPECT_GT(avgFraction(DataPatternKind::MixedPoor), 0.75);
}

TEST(DataPatterns, DeterministicAcrossInstances)
{
    const DataPattern a(DataPatternKind::MixedGood, 7);
    const DataPattern b(DataPatternKind::MixedGood, 7);
    std::array<std::uint8_t, kLineBytes> la{}, lb{};
    for (Addr blk = 0; blk < 64 * kLineBytes; blk += kLineBytes) {
        a.fillLine(blk, la.data());
        b.fillLine(blk, lb.data());
        ASSERT_EQ(la, lb);
    }
}

TEST(DataPatterns, DifferentSeedsGiveDifferentData)
{
    const DataPattern a(DataPatternKind::Random, 1);
    const DataPattern b(DataPatternKind::Random, 2);
    std::array<std::uint8_t, kLineBytes> la{}, lb{};
    a.fillLine(0, la.data());
    b.fillLine(0, lb.data());
    EXPECT_NE(la, lb);
}

TEST(DataPatterns, StoreValuesPreserveCompressibilityClass)
{
    // Writing pattern-consistent values into a small-int line keeps it
    // small-int compressible.
    const DataPattern pattern(DataPatternKind::SmallInts, 5);
    std::array<std::uint8_t, kLineBytes> line{};
    pattern.fillLine(0x1000 * kLineBytes, line.data());
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v =
            pattern.storeValue(0x1000 * kLineBytes + 8 * i, i);
        EXPECT_LT(v, 128u);
    }
}

TEST(DataPatterns, KindNamesAreUnique)
{
    EXPECT_EQ(DataPattern::kindName(DataPatternKind::Zeros), "zeros");
    EXPECT_EQ(DataPattern::kindName(DataPatternKind::MixedGood),
              "mixed-good");
    EXPECT_EQ(DataPattern::kindName(DataPatternKind::MixedPoor),
              "mixed-poor");
}

} // namespace
} // namespace bvc
