/** @file Tests for the functional VSC-2X capacity model. */

#include <gtest/gtest.h>

#include "core/vsc_cache.hh"
#include "test_lines.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

constexpr std::size_t kSize = 16 * 1024;
constexpr std::size_t kWays = 4;
constexpr Addr kSetStride = 64 * kLineBytes;

Addr
setAddr(unsigned n)
{
    return 0x30000 + static_cast<Addr>(n) * kSetStride;
}

TEST(Vsc, CompressibleLinesNearlyDoubleCapacity)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    const Line small = smallLine(); // 5 segments
    // 5-segment lines: floor(64 / 5) = 12 lines fit the segment pool,
    // but tags cap residency at 8.
    for (unsigned i = 0; i < 8; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(llc.probe(setAddr(i)));
    EXPECT_LE(llc.usedSegments(SetIdx{0}).get(), kWays * kSegmentsPerLine);
}

TEST(Vsc, SegmentPoolEnforcesCapacity)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    // 11-segment lines: only floor(64/11) = 5 fit.
    for (unsigned i = 0; i < 8; ++i) {
        const Line line = largeLine(i);
        llc.access(setAddr(i), AccessType::Read, line.data());
    }
    unsigned resident = 0;
    for (unsigned i = 0; i < 8; ++i)
        resident += llc.probe(setAddr(i));
    EXPECT_EQ(resident, 5u);
    EXPECT_LE(llc.usedSegments(SetIdx{0}).get(), kWays * kSegmentsPerLine);
}

TEST(Vsc, FillCanEvictMultipleLines)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    const Line small = smallLine();
    for (unsigned i = 0; i < 8; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    // An incompressible fill needs 16 segments: used = 40, pool = 64;
    // evictions must free 16 - (64-40) segments AND a tag.
    const Line big = randomLine(1);
    const LlcResult result =
        llc.access(setAddr(50), AccessType::Read, big.data());
    EXPECT_FALSE(result.hit);
    // This is VSC's drawback 3 (Section II): eviction of >= 1 line,
    // possibly several, on a single fill.
    EXPECT_GE(llc.lastFillEvictions(), 1u);
    EXPECT_LE(llc.usedSegments(SetIdx{0}).get(), kWays * kSegmentsPerLine);
}

TEST(Vsc, MultipleEvictionsWhenPoolIsTight)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    // Fill the pool to 60 of 64 segments: 5 x 11 + 1 x 5.
    for (unsigned i = 0; i < 5; ++i) {
        const Line line = largeLine(i);
        llc.access(setAddr(i), AccessType::Read, line.data());
    }
    const Line small = smallLine();
    llc.access(setAddr(5), AccessType::Read, small.data());
    // A 16-segment fill must evict the two LRU 11-segment lines: one
    // freed line is not enough (60 - 11 + 16 = 65 > 64).
    const Line big = randomLine(2);
    llc.access(setAddr(60), AccessType::Read, big.data());
    EXPECT_EQ(llc.lastFillEvictions(), 2u);
    EXPECT_GE(llc.stats().get("multi_evict_fills"), 1u);
}

TEST(Vsc, WritebackGrowthTriggersRecompaction)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    const Line small = smallLine();
    for (unsigned i = 0; i < 8; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    // Grow several resident lines to incompressible size.
    const Line big = randomLine(3);
    for (unsigned i = 0; i < 4; ++i)
        llc.access(setAddr(i), AccessType::Writeback, big.data());
    EXPECT_LE(llc.usedSegments(SetIdx{0}).get(), kWays * kSegmentsPerLine);
    EXPECT_GE(llc.stats().get("recompactions"), 4u);
}

TEST(Vsc, HoldsMoreLinesThanUncompressedOnAverage)
{
    const BdiCompressor bdi;
    VscLlc llc(kSize, kWays, bdi);
    const Line small = smallLine();
    const Line medium = mediumLine();
    for (unsigned set = 0; set < 8; ++set) {
        for (unsigned i = 0; i < 8; ++i) {
            const Line &line = (i % 2) ? small : medium;
            llc.access(setAddr(set * 8 + i) + set * kLineBytes,
                       AccessType::Read, line.data());
        }
    }
    // 5- and 7-segment lines mix: ~10 lines per 4-way set.
    EXPECT_GT(llc.validLines(), 8u * kWays);
}

} // namespace
} // namespace bvc
