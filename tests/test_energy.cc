/** @file Tests for the Section VI.D energy model. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace bvc
{
namespace
{

StatGroup
llcStats()
{
    StatGroup stats("llc");
    stats.counter("accesses") += 1000;
    stats.counter("demand_hits") += 600;
    stats.counter("prefetch_hits") += 50;
    stats.counter("fills") += 400;
    stats.counter("writeback_hits") += 100;
    stats.counter("data_movements") += 80;
    stats.counter("compressions") += 500;
    stats.counter("decompressions") += 300;
    return stats;
}

StatGroup
dramStats()
{
    StatGroup stats("dram");
    stats.counter("reads") += 400;
    stats.counter("writes") += 100;
    stats.counter("row_closed") += 50;
    stats.counter("row_conflicts") += 200;
    stats.counter("row_hits") += 250;
    return stats;
}

TEST(Energy, ComponentsArePositive)
{
    const auto llc = llcStats();
    const auto dram = dramStats();
    const EnergyBreakdown e = computeEnergy(llc, dram, 100000, true);
    EXPECT_GT(e.dram, 0.0);
    EXPECT_GT(e.llcTag, 0.0);
    EXPECT_GT(e.llcData, 0.0);
    EXPECT_GT(e.codec, 0.0);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.dram + e.llcTag + e.llcData + e.codec);
}

TEST(Energy, CompressedArchDoublesTagEnergy)
{
    const auto llc = llcStats();
    const auto dram = dramStats();
    const EnergyBreakdown base = computeEnergy(llc, dram, 1000, false);
    const EnergyBreakdown comp = computeEnergy(llc, dram, 1000, true);
    EXPECT_DOUBLE_EQ(comp.llcTag, 2.0 * base.llcTag);
}

TEST(Energy, MissingWordEnablesAddRmwReads)
{
    const auto llc = llcStats();
    const auto dram = dramStats();
    EnergyParams with;
    with.wordEnables = true;
    EnergyParams without;
    without.wordEnables = false;
    const EnergyBreakdown a = computeEnergy(llc, dram, 1000, true, with);
    const EnergyBreakdown b =
        computeEnergy(llc, dram, 1000, true, without);
    // (fills + writeback_hits + movements) extra reads.
    const double extra = (400 + 100 + 80) * with.llcDataRead;
    EXPECT_NEAR(b.llcData - a.llcData, extra, 1e-9);
}

TEST(Energy, WordEnablesIrrelevantForUncompressed)
{
    const auto llc = llcStats();
    const auto dram = dramStats();
    EnergyParams without;
    without.wordEnables = false;
    const EnergyBreakdown a = computeEnergy(llc, dram, 1000, false);
    const EnergyBreakdown b =
        computeEnergy(llc, dram, 1000, false, without);
    EXPECT_DOUBLE_EQ(a.llcData, b.llcData);
}

TEST(Energy, DramEnergyTracksActivationsAndBursts)
{
    StatGroup llc("llc");
    StatGroup dramA("dram"), dramB("dram");
    dramA.counter("reads") += 100;
    dramB.counter("reads") += 100;
    dramB.counter("row_conflicts") += 100;
    const EnergyBreakdown a = computeEnergy(llc, dramA, 0, false);
    const EnergyBreakdown b = computeEnergy(llc, dramB, 0, false);
    EXPECT_GT(b.dram, a.dram);
}

TEST(Energy, FewerDramReadsReduceEnergy)
{
    // The core effect behind Figure 14: compression pays for itself
    // through read-traffic reduction.
    const auto llc = llcStats();
    StatGroup dramSmall("dram"), dramBig("dram");
    dramSmall.counter("reads") += 300;
    dramSmall.counter("row_conflicts") += 150;
    dramBig.counter("reads") += 400;
    dramBig.counter("row_conflicts") += 200;
    const EnergyBreakdown small =
        computeEnergy(llc, dramSmall, 1000, true);
    const EnergyBreakdown big = computeEnergy(llc, dramBig, 1000, true);
    EXPECT_LT(small.dram, big.dram);
}

TEST(Energy, StaticEnergyScalesWithCycles)
{
    StatGroup llc("llc"), dram("dram");
    const EnergyBreakdown shortRun =
        computeEnergy(llc, dram, 1000, false);
    const EnergyBreakdown longRun =
        computeEnergy(llc, dram, 100000, false);
    EXPECT_GT(longRun.dram, shortRun.dram);
}

} // namespace
} // namespace bvc
