/**
 * @file
 * Tests for the bvlint project linter (tools/bvlint/,
 * docs/static_analysis.md): each known-bad fixture in
 * tests/lint_fixtures/ must trip exactly its rule, suppressions must
 * silence findings, and clean idiomatic code must produce none.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bvlint/lint.hh"

namespace
{

using bvlint::Finding;
using bvlint::SourceFile;

std::string
fixturePath(const std::string &name)
{
    return std::string(BVC_LINT_FIXTURE_DIR) + "/" + name;
}

SourceFile
loadFixture(const std::string &name)
{
    const std::string path = fixturePath(name);
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return {path, ss.str()};
}

/** Lint one fixture and return the set of rule ids it trips. */
std::set<std::string>
rulesTripped(const std::string &name, std::size_t &count)
{
    const std::vector<Finding> findings =
        bvlint::lintFiles({loadFixture(name)});
    count = findings.size();
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

TEST(BvlintRules, TableListsTenUniqueIds)
{
    const auto &rules = bvlint::ruleTable();
    ASSERT_EQ(rules.size(), 10u);
    std::set<std::string> ids;
    for (const auto &rule : rules)
        ids.insert(rule.id);
    EXPECT_EQ(ids.size(), rules.size());
    EXPECT_TRUE(ids.count("BV001"));
    EXPECT_TRUE(ids.count("BV009"));
    EXPECT_TRUE(ids.count("BV010"));
}

TEST(BvlintFixtures, EachBadFixtureTripsExactlyItsRule)
{
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"bad_counter.cc", "BV001"},
        {"bad_rand.cc", "BV002"},
        {"bad_default.cc", "BV003"},
        {"bad_assert.cc", "BV004"},
        {"bad_include_guard.hh", "BV005"},
        {"bad_endl.cc", "BV006"},
        {"bad_nodiscard.hh", "BV007"},
        {"bad_get_unwrap.cc", "BV008"},
        {"bad_raw_mutex.cc", "BV009"},
        {"bad_member_doc.hh", "BV010"},
    };
    for (const auto &[fixture, rule] : cases) {
        std::size_t count = 0;
        const std::set<std::string> tripped =
            rulesTripped(fixture, count);
        EXPECT_EQ(tripped, std::set<std::string>{rule})
            << fixture << " tripped the wrong rule set";
        EXPECT_GE(count, 1u) << fixture;
    }
}

TEST(BvlintFixtures, SuppressionCommentsSilenceEveryRule)
{
    std::size_t count = 0;
    const std::set<std::string> tripped =
        rulesTripped("suppressed.cc", count);
    EXPECT_TRUE(tripped.empty())
        << "unsuppressed rule: " << *tripped.begin();
    EXPECT_EQ(count, 0u);
}

TEST(BvlintCounter, RegistrationFormIsNotFlagged)
{
    // Member-init registration (no ';' on the lookup lines) is the
    // blessed HotCounters idiom and must stay clean, including the
    // wrapped two-line form used in base_victim_cache.cc.
    const SourceFile src{"src/cache/demo.cc",
                         "Demo::HotCounters::HotCounters(StatGroup &s)\n"
                         "    : hits(s.counter(\"hits\")),\n"
                         "      misses(s.counter(\n"
                         "          \"misses\"))\n"
                         "{\n"
                         "}\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintCounter, StatementLookupIsFlagged)
{
    const SourceFile src{"src/cache/demo.cc",
                         "void Demo::access() {\n"
                         "    ++stats_->counter(\"accesses\");\n"
                         "}\n"};
    const auto findings = bvlint::lintFiles({src});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "BV001");
    EXPECT_EQ(findings[0].line, 2u);
}

TEST(BvlintSwitch, NonEnumSwitchWithDefaultIsAllowed)
{
    // Switches over chars or decoded integer prefixes keep their
    // defaults (runner/report.cc, compress/fpc.cc).
    const SourceFile src{"src/runner/demo.cc",
                         "int classify(char c) {\n"
                         "    switch (c) {\n"
                         "      case 'a': return 1;\n"
                         "      default: return 0;\n"
                         "    }\n"
                         "}\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintSwitch, EnumDeclaredInAnotherFileStillCounts)
{
    // BV003 collects enum class names across the whole file set, the
    // way enums in headers are switched over in .cc files.
    const SourceFile header{"src/util/kinds.hh",
                            "#ifndef BVC_UTIL_KINDS_HH_\n"
                            "#define BVC_UTIL_KINDS_HH_\n"
                            "enum class Kind { A, B };\n"
                            "#endif // BVC_UTIL_KINDS_HH_\n"};
    const SourceFile user{"src/util/use.cc",
                          "int f(Kind k) {\n"
                          "    switch (k) {\n"
                          "      case Kind::A: return 0;\n"
                          "      default: return 1;\n"
                          "    }\n"
                          "}\n"};
    const auto findings = bvlint::lintFiles({header, user});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "BV003");
    EXPECT_EQ(findings[0].file, "src/util/use.cc");
    EXPECT_EQ(findings[0].line, 4u);
}

TEST(BvlintAssert, StaticAssertAndCommentsAreNotFlagged)
{
    const SourceFile src{"src/util/demo.cc",
                         "// assert() is banned; this comment is not.\n"
                         "static_assert(sizeof(int) == 4);\n"
                         "const char *s = \"assert(x)\";\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintNodiscard, CallSitesAreNotDeclarations)
{
    // Call sites of parse/read/verify functions — including the
    // wrapped form that puts the callee at the start of a line — must
    // not be mistaken for declarations.
    const SourceFile src{"src/util/demo.hh",
                         "#ifndef BVC_UTIL_DEMO_HH_\n"
                         "#define BVC_UTIL_DEMO_HH_\n"
                         "[[nodiscard]] bool readFlag(int fd);\n"
                         "inline bool check(int fd) {\n"
                         "    if (!readFlag(fd))\n"
                         "        return false;\n"
                         "    const bool other =\n"
                         "        readFlag(fd + 1);\n"
                         "    return other && readFlag(fd + 2);\n"
                         "}\n"
                         "#endif // BVC_UTIL_DEMO_HH_\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintNodiscard, VoidReturnsAndSourceFilesStayClean)
{
    // void-returning readers have nothing to discard, and .cc files
    // are out of scope (the declaration in the header carries the
    // attribute for both).
    const SourceFile header{"src/util/clean.hh",
                            "#ifndef BVC_UTIL_CLEAN_HH_\n"
                            "#define BVC_UTIL_CLEAN_HH_\n"
                            "void readAll(int fd, char *out);\n"
                            "#endif // BVC_UTIL_CLEAN_HH_\n"};
    const SourceFile source{"src/util/clean.cc",
                            "bool\n"
                            "parseLine(const char *text)\n"
                            "{\n"
                            "    return text != nullptr;\n"
                            "}\n"};
    EXPECT_TRUE(bvlint::lintFiles({header, source}).empty());
}

TEST(BvlintNodiscard, TwoLineDeclarationIsFlaggedAndSuppressible)
{
    const std::string body = "#ifndef BVC_UTIL_TWO_HH_\n"
                             "#define BVC_UTIL_TWO_HH_\n"
                             "inline unsigned long\n"
                             "parseCount(const char *text)\n"
                             "{\n"
                             "    return text ? 1 : 0;\n"
                             "}\n"
                             "#endif // BVC_UTIL_TWO_HH_\n";
    const SourceFile bad{"src/util/two.hh", body};
    const auto findings = bvlint::lintFiles({bad});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "BV007");
    EXPECT_EQ(findings[0].line, 4u);

    std::string waived = body;
    waived.insert(waived.find("inline unsigned long"),
                  "// bvlint-allow(BV007)\n");
    EXPECT_TRUE(bvlint::lintFiles({{"src/util/two.hh", waived}})
                    .empty());
}

TEST(BvlintGetUnwrap, FlagsEveryRawUnwrapShape)
{
    std::size_t count = 0;
    const std::set<std::string> tripped =
        rulesTripped("bad_get_unwrap.cc", count);
    EXPECT_EQ(tripped, std::set<std::string>{"BV008"});
    // Two derefs, two nullptr compares, one arrow — one finding per
    // offending line.
    EXPECT_EQ(count, 5u);
}

TEST(BvlintGetUnwrap, StrongTypeAndDynamicCastGetsStayClean)
{
    // Strong-type .get() at the array-index boundary (the
    // util/strong_types.hh idiom, including multiplication) and the
    // raw-handle escape into dynamic_cast are the two blessed .get()
    // classes.
    const SourceFile src{
        "src/cache/demo.cc",
        "int pick(SetIdx set, WayIdx way) {\n"
        "    return base_[set.get() * ways_ + way.get()];\n"
        "}\n"
        "int scale(SegCount segs) { return ways_ * segs.get(); }\n"
        "BaseVictimLlc *downcast(std::unique_ptr<Llc> &p) {\n"
        "    return dynamic_cast<BaseVictimLlc *>(p.get());\n"
        "}\n"
        "void pass(std::unique_ptr<Tracker> &t) { use(t.get()); }\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintGuard, ExpectedGuardMatchesRepoConvention)
{
    EXPECT_EQ(bvlint::expectedGuard("src/util/types.hh"),
              "BVC_UTIL_TYPES_HH_");
    EXPECT_EQ(bvlint::expectedGuard("/root/repo/src/cache/cache.hh"),
              "BVC_CACHE_CACHE_HH_");
    EXPECT_EQ(bvlint::expectedGuard("tests/test_lines.hh"),
              "BVC_TESTS_TEST_LINES_HH_");
    EXPECT_EQ(bvlint::expectedGuard("tools/bvlint/lint.hh"),
              "BVC_TOOLS_BVLINT_LINT_HH_");
}

TEST(BvlintGuard, MissingGuardAndSuppressionOnIfndefLine)
{
    const SourceFile missing{"src/util/a.hh", "namespace bvc {}\n"};
    auto findings = bvlint::lintFiles({missing});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "BV005");

    const SourceFile waived{
        "src/util/a.hh",
        "#ifndef LEGACY_GUARD_ // bvlint-allow(BV005)\n"
        "#define LEGACY_GUARD_\n"
        "#endif\n"};
    EXPECT_TRUE(bvlint::lintFiles({waived}).empty());
}

TEST(BvlintRawMutex, HoldersAndAnnotatedMutexStayClean)
{
    // The AnnotatedMutex member is the rule's target replacement, and
    // lock-holder templates are the one legitimate raw spelling.
    const SourceFile src{
        "src/util/demo.cc",
        "struct Pool {\n"
        "    bvc::AnnotatedMutex mutex_;\n"
        "    void drain() {\n"
        "        std::unique_lock<std::mutex> lock(raw_);\n"
        "        std::lock_guard<std::shared_mutex> g(rw_);\n"
        "    }\n"
        "};\n"};
    EXPECT_TRUE(bvlint::lintFiles({src}).empty());
}

TEST(BvlintRawMutex, VectorOfMutexesIsStillFlagged)
{
    const SourceFile src{"src/core/demo.hh",
                         "#ifndef BVC_CORE_DEMO_HH_\n"
                         "#define BVC_CORE_DEMO_HH_\n"
                         "struct Banks {\n"
                         "    /** One lock per bank. */\n"
                         "    mutable std::vector<std::mutex> locks_;\n"
                         "};\n"
                         "#endif // BVC_CORE_DEMO_HH_\n"};
    const auto findings = bvlint::lintFiles({src});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "BV009");
    EXPECT_EQ(findings[0].line, 5u);
}

TEST(BvlintMemberDoc, TrailingAndAboveCommentsBothCount)
{
    std::size_t count = 0;
    const std::set<std::string> tripped =
        rulesTripped("bad_member_doc.hh", count);
    EXPECT_EQ(tripped, std::set<std::string>{"BV010"});
    // Exactly the three undocumented members; the documented ones,
    // the function, the private member and the enumerators are clean.
    EXPECT_EQ(count, 3u);
}

TEST(BvlintMemberDoc, MacroAnnotatedMembersAndSourcesAreExempt)
{
    // Parenthesized annotation macros read as function-ish and are
    // deliberately skipped, and .cc files are out of scope entirely.
    const SourceFile header{
        "src/util/demo.hh",
        "#ifndef BVC_UTIL_DEMO_HH_\n"
        "#define BVC_UTIL_DEMO_HH_\n"
        "struct State {\n"
        "    std::size_t inFlight BVC_GUARDED_BY(mutex_) = 0;\n"
        "};\n"
        "#endif // BVC_UTIL_DEMO_HH_\n"};
    const SourceFile source{"src/util/demo.cc",
                            "struct Local {\n"
                            "    int scratch = 0;\n"
                            "};\n"};
    EXPECT_TRUE(bvlint::lintFiles({header, source}).empty());
}

TEST(BvlintSuppressions, ConfigWaivesMatchingFilesOnly)
{
    const std::string body = "long stamp() { return time(nullptr); }\n";
    const SourceFile gen{"src/gen/schema_gen.cc", body};
    const SourceFile handWritten{"src/util/clock.cc", body};

    bvlint::LintOptions options;
    std::string error;
    ASSERT_TRUE(bvlint::parseSuppressionConfig(
        "# generated code is exempt\n"
        "src/gen/* BV002\n",
        options.suppressions, error))
        << error;

    const auto findings =
        bvlint::lintFiles({gen, handWritten}, options);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/util/clock.cc");
    EXPECT_EQ(findings[0].rule, "BV002");
}

TEST(BvlintSuppressions, StarRuleWaivesEverythingAndBadLinesError)
{
    bvlint::LintOptions options;
    std::string error;
    ASSERT_TRUE(bvlint::parseSuppressionConfig(
        "legacy/* *\n", options.suppressions, error));
    const SourceFile legacy{"legacy/old.cc",
                            "void f() { (void)rand(); }\n"};
    EXPECT_TRUE(bvlint::lintFiles({legacy}, options).empty());

    std::vector<bvlint::FileSuppression> bad;
    EXPECT_FALSE(
        bvlint::parseSuppressionConfig("pattern-without-rules\n", bad,
                                       error));
    EXPECT_FALSE(
        bvlint::parseSuppressionConfig("src/* NOTARULE\n", bad,
                                       error));
}

TEST(BvlintSuppressions, PatternMatchingSemantics)
{
    EXPECT_TRUE(bvlint::matchesPattern("src/gen/*",
                                       "src/gen/deep/file.cc"));
    EXPECT_TRUE(bvlint::matchesPattern("*/format.hh",
                                       "src/tracefile/format.hh"));
    EXPECT_TRUE(bvlint::matchesPattern("src/a.cc", "src/a.cc"));
    EXPECT_FALSE(bvlint::matchesPattern("src/gen/*", "src/util/a.cc"));
    EXPECT_FALSE(bvlint::matchesPattern("src/a.cc", "src/a.cc.bak"));
}

TEST(BvlintJson, FindingsRoundTripThroughJson)
{
    const SourceFile src{"src/util/demo.cc",
                         "void f() { (void)rand(); }\n"
                         "const char *quote = \"he said \\\"hi\\\"\";\n"
                         "void g() { (void)rand(); }\n"};
    const auto findings = bvlint::lintFiles({src});
    ASSERT_EQ(findings.size(), 2u);
    const std::string doc = bvlint::findingsToJson(findings);

    // The document must be parseable by the same minimal scanner the
    // compile_commands reader uses — "file" keys extract cleanly.
    std::vector<std::string> files;
    std::string error;
    std::string asArray = "[" + doc + "]";
    ASSERT_TRUE(bvlint::parseCompileCommands(asArray, files, error))
        << error;
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "src/util/demo.cc");

    // Structure and content spot checks.
    EXPECT_NE(doc.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"BV002\""), std::string::npos);
    EXPECT_NE(doc.find("\"line\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"line\": 3"), std::string::npos);

    EXPECT_EQ(bvlint::findingsToJson({}), "{\"findings\": []}\n");
}

TEST(BvlintJson, EscapesEmbeddedQuotesAndBackslashes)
{
    const bvlint::Finding f{"src/we\\ird\".cc", 7, "BV002", "msg"};
    const std::string doc = bvlint::findingsToJson({f});
    EXPECT_NE(doc.find(R"(src/we\\ird\".cc)"), std::string::npos);
}

TEST(BvlintCompileCommands, ExtractsFileEntries)
{
    const std::string db = R"([
      {
        "directory": "/root/repo/build",
        "command": "g++ -c ../src/cache/cache.cc -o cache.o",
        "file": "/root/repo/src/cache/cache.cc"
      },
      {
        "directory": "/root/repo/build",
        "command": "g++ -DNAME=\"file\" -c ../tools/bvsim.cc",
        "file": "/root/repo/tools/bvsim.cc"
      }
    ])";
    std::vector<std::string> files;
    std::string error;
    ASSERT_TRUE(bvlint::parseCompileCommands(db, files, error))
        << error;
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "/root/repo/src/cache/cache.cc");
    EXPECT_EQ(files[1], "/root/repo/tools/bvsim.cc");
}

TEST(BvlintCompileCommands, RejectsNonArrayInput)
{
    std::vector<std::string> files;
    std::string error;
    EXPECT_FALSE(
        bvlint::parseCompileCommands("{\"file\": \"x.cc\"}", files,
                                     error));
    EXPECT_FALSE(error.empty());
}

} // namespace
