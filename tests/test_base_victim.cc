/**
 * @file
 * Scenario tests for the Base-Victim cache, following Section IV.B's
 * case analysis (compressed miss, victim read hit, base write hit) and
 * the Figures 4/5 walkthroughs.
 */

#include <gtest/gtest.h>

#include "core/base_victim_cache.hh"
#include "test_lines.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

// 16KB, 4 physical ways -> 64 sets.
constexpr std::size_t kSize = 16 * 1024;
constexpr std::size_t kWays = 4;
constexpr Addr kSetStride = 64 * kLineBytes;

Addr
setAddr(unsigned n)
{
    return 0x20000 + static_cast<Addr>(n) * kSetStride;
}

class BaseVictimTest : public ::testing::Test
{
  protected:
    BaseVictimTest()
        : llc_(kSize, kWays, ReplacementKind::Lru, VictimReplKind::Ecm,
               bdi_)
    {
    }

    /** Fill one set's base ways with compressible lines 0..3. */
    void
    fillBase()
    {
        const Line small = smallLine();
        for (unsigned i = 0; i < kWays; ++i)
            llc_.access(setAddr(i), AccessType::Read, small.data());
    }

    BdiCompressor bdi_;
    BaseVictimLlc llc_;
};

TEST_F(BaseVictimTest, MissMovesBaseVictimIntoVictimCache)
{
    fillBase();
    // Fifth line: LRU victim (line 0) is evicted from the base cache
    // but parked in the victim cache (Section IV.B.1, Figure 4).
    const Line small = smallLine();
    const LlcResult result =
        llc_.access(setAddr(4), AccessType::Read, small.data());
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(llc_.probeBase(setAddr(4)));
    EXPECT_FALSE(llc_.probeBase(setAddr(0)));
    EXPECT_TRUE(llc_.probeVictim(setAddr(0)));
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, BaseEvictionBackInvalidatesEvenWhenParked)
{
    fillBase();
    const Line small = smallLine();
    const LlcResult result =
        llc_.access(setAddr(4), AccessType::Read, small.data());
    // Line 0 moved to the victim cache, so the upper levels must drop
    // it (victim lines are outside the baseline content).
    ASSERT_EQ(result.backInvalidations.size(), 1u);
    EXPECT_EQ(result.backInvalidations[0], setAddr(0));
}

TEST_F(BaseVictimTest, VictimReadHitPromotesToBase)
{
    fillBase();
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    ASSERT_TRUE(llc_.probeVictim(setAddr(0)));

    // Read the parked line: Section IV.B.2 / Figure 5.
    const LlcResult result =
        llc_.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_TRUE(result.hit);
    EXPECT_TRUE(result.victimHit);
    EXPECT_TRUE(llc_.probeBase(setAddr(0)));
    EXPECT_FALSE(llc_.probeVictim(setAddr(0)));
    // The displaced base line (LRU = line 1) is parked in turn.
    EXPECT_FALSE(llc_.probeBase(setAddr(1)));
    EXPECT_TRUE(llc_.probeVictim(setAddr(1)));
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, VictimHitCountsAsDemandHit)
{
    fillBase();
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    llc_.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_EQ(llc_.stats().get("victim_hits"), 1u);
    EXPECT_EQ(llc_.stats().get("promotions"), 1u);
}

TEST_F(BaseVictimTest, IncompressibleVictimIsDropped)
{
    // Fill base ways with incompressible lines: no victim can ever be
    // parked (16 + anything > 16 segments).
    for (unsigned i = 0; i < kWays; ++i) {
        const Line line = randomLine(i);
        llc_.access(setAddr(i), AccessType::Read, line.data());
    }
    const Line line = randomLine(50);
    llc_.access(setAddr(4), AccessType::Read, line.data());
    EXPECT_FALSE(llc_.probe(setAddr(0)));
    EXPECT_EQ(llc_.stats().get("victim_insert_failures"), 1u);
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, DirtyBaseEvictionWritesBackOnceAndParksClean)
{
    fillBase();
    // Dirty line 0 via an L2 writeback.
    const Line small = smallLine();
    llc_.access(setAddr(0), AccessType::Writeback, small.data());
    // Rotate LRU so line 0 is the victim of the next fill.
    llc_.access(setAddr(1), AccessType::Read, small.data());
    llc_.access(setAddr(2), AccessType::Read, small.data());
    llc_.access(setAddr(3), AccessType::Read, small.data());
    const LlcResult result =
        llc_.access(setAddr(4), AccessType::Read, small.data());
    // Exactly one writeback (the dirty victim), then parked clean.
    ASSERT_EQ(result.memWritebacks.size(), 1u);
    EXPECT_EQ(result.memWritebacks[0], setAddr(0));
    EXPECT_TRUE(llc_.probeVictim(setAddr(0)));
    EXPECT_TRUE(llc_.checkInvariants()); // includes victim-clean check
}

TEST_F(BaseVictimTest, VictimEvictionIsSilent)
{
    fillBase();
    const Line small = smallLine();
    // Park line 0, then displace it by churning many fills through.
    std::size_t writebacks = 0;
    for (unsigned i = 4; i < 20; ++i) {
        const LlcResult r =
            llc_.access(setAddr(i), AccessType::Read, small.data());
        writebacks += r.memWritebacks.size();
    }
    // All parked lines were clean: no writeback traffic at all.
    EXPECT_EQ(writebacks, 0u);
}

TEST_F(BaseVictimTest, WriteGrowthSilentlyEvictsVictimPartner)
{
    fillBase();
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    ASSERT_TRUE(llc_.probeVictim(setAddr(0)));

    // Find which base line shares the physical way with victim 0 by
    // growing each base line until the victim disappears (IV.B.5).
    const Line grown = randomLine(3);
    const Addr baseLines[] = {setAddr(1), setAddr(2), setAddr(3),
                              setAddr(4)};
    std::size_t before = llc_.stats().get("victim_silent_evictions");
    for (const Addr addr : baseLines) {
        if (!llc_.probeVictim(setAddr(0)))
            break;
        const LlcResult r =
            llc_.access(addr, AccessType::Writeback, grown.data());
        EXPECT_TRUE(r.hit);
        // Write hits never write back to memory by themselves.
        EXPECT_TRUE(r.memWritebacks.empty());
    }
    EXPECT_FALSE(llc_.probeVictim(setAddr(0)));
    EXPECT_GT(llc_.stats().get("victim_silent_evictions"), before);
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, AtMostOneWritebackPerAccess)
{
    const DataPattern pattern(DataPatternKind::MixedGood, 3);
    Rng rng(11);
    Line line{};
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = 0x8000 + rng.range(2048) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const bool writeback = rng.chance(0.15) && llc_.probeBase(blk);
        const LlcResult r = llc_.access(
            blk, writeback ? AccessType::Writeback : AccessType::Read,
            line.data());
        // The paper's design guarantee: at most one writeback per fill
        // (Section IV.A).
        ASSERT_LE(r.memWritebacks.size(), 1u);
    }
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, PrefetchHitOnVictimPromotes)
{
    fillBase();
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    ASSERT_TRUE(llc_.probeVictim(setAddr(0)));
    const LlcResult r =
        llc_.access(setAddr(0), AccessType::Prefetch, small.data());
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.victimHit);
    EXPECT_TRUE(llc_.probeBase(setAddr(0)));
}

TEST_F(BaseVictimTest, ZeroLinesPairWithAnything)
{
    // A zero line occupies zero data segments, so even an
    // incompressible partner can keep it as a victim.
    const Line zero = zeroLine();
    for (unsigned i = 0; i < kWays; ++i)
        llc_.access(setAddr(i), AccessType::Read, zero.data());
    const Line big = randomLine(9);
    llc_.access(setAddr(4), AccessType::Read, big.data());
    EXPECT_TRUE(llc_.probeVictim(setAddr(0)));
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, ExtraLatencyTagAndDecompression)
{
    const Line small = smallLine();
    const Line zero = zeroLine();
    const Line big = randomLine(1);
    llc_.access(setAddr(0), AccessType::Read, small.data());
    llc_.access(setAddr(1), AccessType::Read, zero.data());
    llc_.access(setAddr(2), AccessType::Read, big.data());
    EXPECT_EQ(llc_.access(setAddr(0), AccessType::Read,
                          small.data()).extraLatency, 3u);
    EXPECT_EQ(llc_.access(setAddr(1), AccessType::Read,
                          zero.data()).extraLatency, 1u);
    EXPECT_EQ(llc_.access(setAddr(2), AccessType::Read,
                          big.data()).extraLatency, 1u);
}

TEST_F(BaseVictimTest, WritebackMissPanics)
{
    const Line small = smallLine();
    EXPECT_DEATH(
        llc_.access(setAddr(0), AccessType::Writeback, small.data()),
        "inclusion");
}

TEST_F(BaseVictimTest, ValidLinesCountsBothSections)
{
    fillBase();
    EXPECT_EQ(llc_.validLines(), 4u);
    const Line small = smallLine();
    llc_.access(setAddr(4), AccessType::Read, small.data());
    EXPECT_EQ(llc_.validLines(), 5u); // 4 base + 1 victim
}

TEST_F(BaseVictimTest, PromotionReusesVacatedVictimWay)
{
    // Fill the base ways (lines 0-3), then stream lines 4-7 so every
    // replaced base line parks: base = {4,5,6,7}, victims = {0,1,2,3},
    // all four victim ways occupied.
    fillBase();
    const Line small = smallLine();
    for (unsigned i = 4; i < 8; ++i)
        llc_.access(setAddr(i), AccessType::Read, small.data());
    ASSERT_EQ(llc_.validLines(), 8u);
    ASSERT_EQ(llc_.stats().get("victim_silent_evictions"), 0u);

    // Victim hit on line 0: it is promoted into the base cache and the
    // displaced base line (LRU: line 4) must be parked in the victim
    // way line 0 just vacated — the only empty slot. Excluding the
    // vacated way would force a resident victim out instead.
    const LlcResult result =
        llc_.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_TRUE(result.victimHit);
    EXPECT_TRUE(llc_.probeBase(setAddr(0)));
    EXPECT_FALSE(llc_.probeBase(setAddr(4)));
    EXPECT_TRUE(llc_.probeVictim(setAddr(4)));
    for (unsigned i = 1; i < 4; ++i)
        EXPECT_TRUE(llc_.probeVictim(setAddr(i))) << "line " << i;
    EXPECT_EQ(llc_.stats().get("victim_silent_evictions"), 0u);
    EXPECT_EQ(llc_.stats().get("victim_insert_failures"), 0u);
    EXPECT_EQ(llc_.validLines(), 8u);
    EXPECT_TRUE(llc_.checkInvariants());
}

TEST_F(BaseVictimTest, WritebackHitDoesNotDecompress)
{
    const Line small = smallLine(); // compressible: 5 segments
    llc_.access(setAddr(0), AccessType::Read, small.data());
    ASSERT_EQ(llc_.stats().get("decompressions"), 0u);

    // A writeback overwrites the whole line: the stored copy is never
    // expanded, so neither the counter nor the latency may move.
    const LlcResult wb =
        llc_.access(setAddr(0), AccessType::Writeback, small.data());
    EXPECT_TRUE(wb.hit);
    EXPECT_EQ(wb.extraLatency, 1u); // tag lookup only
    EXPECT_EQ(llc_.stats().get("decompressions"), 0u);

    // A read hit on the same compressed line does decompress.
    const LlcResult rd =
        llc_.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_TRUE(rd.hit);
    EXPECT_GT(rd.extraLatency, 1u);
    EXPECT_EQ(llc_.stats().get("decompressions"), 1u);
}

TEST(BaseVictimNonInclusive, VictimWritebackHitDoesNotDecompress)
{
    BdiCompressor bdi;
    BaseVictimLlc llc(kSize, kWays, ReplacementKind::Lru,
                      VictimReplKind::Ecm, bdi, /*inclusive=*/false);
    const Line small = smallLine();
    for (unsigned i = 0; i <= kWays; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    ASSERT_TRUE(llc.probeVictim(setAddr(0)));
    const std::size_t before = llc.stats().get("decompressions");

    // Non-inclusive write hit in the Victim Cache (Section IV.B.3):
    // the line is recompressed and promoted, never decompressed.
    const LlcResult wb =
        llc.access(setAddr(0), AccessType::Writeback, small.data());
    EXPECT_TRUE(wb.victimHit);
    EXPECT_EQ(wb.extraLatency, 1u);
    EXPECT_EQ(llc.stats().get("decompressions"), before);
    EXPECT_EQ(llc.stats().get("victim_write_hits"), 1u);
    EXPECT_TRUE(llc.checkInvariants());
}

} // namespace
} // namespace bvc
