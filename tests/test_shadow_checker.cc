/**
 * @file
 * Tests for the lockstep shadow checker (src/check/, docs/invariants.md):
 * positive lockstep runs over random streams, transparency of the
 * wrapper, and death tests proving each divergence class is caught.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "check/shadow_checker.hh"
#include "compress/factory.hh"
#include "core/base_victim_cache.hh"
#include "core/uncompressed_llc.hh"
#include "sim/system.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

constexpr std::size_t kWays = 8;
constexpr std::size_t kSets = 16;
constexpr std::size_t kBytes = kSets * kWays * kLineBytes;

/** Inclusive Base-Victim LLC under the checker; keeps a raw BV view. */
struct CheckedBv
{
    std::unique_ptr<Compressor> comp = makeCompressor("bdi");
    BaseVictimLlc *bv = nullptr;
    std::unique_ptr<ShadowChecker> checker;

    explicit CheckedBv(ReplacementKind repl = ReplacementKind::Nru)
    {
        auto inner = std::make_unique<BaseVictimLlc>(
            kBytes, kWays, repl, VictimReplKind::Ecm, *comp);
        bv = inner.get();
        checker = std::make_unique<ShadowChecker>(std::move(inner),
                                                  kBytes, kWays, repl);
    }
};

/** Drive `n` pattern-filled accesses through any Llc. */
void
drive(Llc &llc, std::uint64_t n, std::uint64_t seed,
      DataPatternKind kind = DataPatternKind::MixedGood)
{
    const DataPattern pattern(kind, seed);
    Rng rng(seed + 1);
    std::uint8_t line[kLineBytes];
    const std::uint64_t footprint = kSets * kWays * 3;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr blk = rng.range(footprint) * kLineBytes;
        pattern.fillLine(blk, line);
        AccessType type = AccessType::Read;
        const double r = rng.uniform();
        if (r < 0.05)
            type = AccessType::Prefetch;
        else if (r < 0.25 && llc.probeBase(blk))
            type = AccessType::Writeback;
        llc.access(blk, type, line);
    }
}

/** A block address landing in set 0 of the small test geometry. */
Addr
set0Blk(std::uint64_t i)
{
    return static_cast<Addr>(i) * kSets * kLineBytes;
}

TEST(ShadowChecker, MirrorHoldsOverRandomStream)
{
    CheckedBv c;
    drive(*c.checker, 5000, 42);
    EXPECT_TRUE(c.checker->mirrorChecked());
    EXPECT_TRUE(c.checker->hasShadow());
    EXPECT_EQ(c.checker->checkedAccesses(), 5000u);
    // Compressible mixed data must produce at least some opportunistic
    // victim hits over 5000 accesses of a 3x-capacity footprint.
    EXPECT_GT(c.checker->extraDemandHits(), 0u);
}

TEST(ShadowChecker, MirrorHoldsForUncompressedSelfCheck)
{
    auto inner = std::make_unique<UncompressedLlc>(kBytes, kWays,
                                                   ReplacementKind::Lru);
    ShadowChecker checker(std::move(inner), kBytes, kWays,
                          ReplacementKind::Lru);
    drive(checker, 3000, 7);
    EXPECT_TRUE(checker.mirrorChecked());
    // The baseline can never out-hit its own mirror.
    EXPECT_EQ(checker.extraDemandHits(), 0u);
}

TEST(ShadowChecker, WrapperIsTransparent)
{
    CheckedBv c;
    EXPECT_EQ(c.checker->name(), c.bv->name());
    // stats() must forward to the wrapped model, so snapshot readers
    // see numbers identical to an unchecked run.
    EXPECT_EQ(&c.checker->stats(), &c.bv->stats());
    drive(*c.checker, 200, 3);
    EXPECT_EQ(c.checker->stats().get("accesses"),
              c.bv->stats().get("accesses"));
}

TEST(ShadowChecker, FailHandlerReceivesDivergence)
{
    CheckedBv c;
    std::string captured;
    c.checker->setFailHandler(
        [&](const std::string &msg) { captured = msg; });
    // Desynchronize the shadow directly, then touch the same set.
    std::uint8_t line[kLineBytes] = {};
    c.checker->shadow().access(set0Blk(1), AccessType::Read, line);
    c.checker->access(set0Blk(2), AccessType::Read, line);
    EXPECT_NE(captured.find("shadow check failed"), std::string::npos);
}

TEST(ShadowCheckerDeathTest, CatchesForcedBaseMismatch)
{
    EXPECT_DEATH(
        {
            CheckedBv c;
            std::uint8_t line[kLineBytes] = {};
            // An access the inner cache never saw desynchronizes the
            // shadow; the next checked access to that set must die.
            c.checker->shadow().access(set0Blk(1), AccessType::Read,
                                       line);
            c.checker->access(set0Blk(2), AccessType::Read, line);
        },
        "shadow check failed");
}

TEST(ShadowCheckerDeathTest, CatchesDirtyInclusiveVictim)
{
    EXPECT_DEATH(
        {
            CheckedBv c;
            // Zero lines compress maximally, guaranteeing victims park.
            drive(*c.checker, 2000, 11, DataPatternKind::Zeros);
            bool corrupted = false;
            for (std::size_t si = 0; si < kSets && !corrupted; ++si) {
                const SetIdx set{si};
                for (const WayIdx w : indexRange<WayIdx>(kWays)) {
                    if (!c.bv->victimLineAt(set, w).valid)
                        continue;
                    CacheLine corrupt = c.bv->victimLineAt(set, w);
                    corrupt.dirty = true;
                    c.bv->debugSetVictimLine(set, w, corrupt);
                    // Re-touch a base-resident line of the same set: a
                    // pure hit leaves the corrupted victim in place for
                    // the structural check (reading the victim itself
                    // would promote it to the base section first).
                    for (const WayIdx bw : indexRange<WayIdx>(kWays)) {
                        if (!c.bv->baseLineAt(set, bw).valid)
                            continue;
                        const Addr blk = c.bv->baseLineAt(set, bw).tag;
                        std::uint8_t line[kLineBytes] = {};
                        c.checker->access(blk, AccessType::Read, line);
                        break;
                    }
                    corrupted = true;
                    break;
                }
            }
            // No victim line after 2000 zero-line accesses would be a
            // bug of its own; exit(0) fails the death expectation.
            if (!corrupted)
                std::exit(0);
        },
        "dirty victim line in the inclusive Victim Cache");
}

TEST(ShadowCheckerDeathTest, CatchesDuplicateTag)
{
    EXPECT_DEATH(
        {
            CheckedBv c;
            std::uint8_t line[kLineBytes] = {};
            // Fill two base lines of set 0, then clone one base tag
            // into a victim slot: a line may never live in both
            // sections (Section IV.A tag-lookup uniqueness).
            c.checker->access(set0Blk(1), AccessType::Read, line);
            c.checker->access(set0Blk(2), AccessType::Read, line);
            CacheLine slot;
            slot.valid = true;
            slot.dirty = false;
            slot.tag = set0Blk(1);
            slot.segments = kZeroLineSegments;
            c.bv->debugSetVictimLine(SetIdx{0}, WayIdx{0}, slot);
            c.checker->access(set0Blk(2), AccessType::Read, line);
        },
        "tag in both B and V sections");
}

TEST(ShadowCheckerDeathTest, CatchesDivergenceOnBatchedDecodePath)
{
    EXPECT_DEATH(
        {
            // The checked access stream must flow through System::run's
            // block-buffered decode boundary, proving the lockstep
            // checker still guards the batched path.
            setenv("BVC_CHECK", "1", 1);
            SystemConfig cfg = SystemConfig::benchDefaults();
            cfg.arch = LlcArch::BaseVictim;
            TraceParams params;
            params.name = "batched-check";
            params.seed = 5;
            System system(cfg, params);
            system.run(0, 2000);
            // Desynchronize every shadow set behind the checker's back;
            // the next checked access (wherever it lands) must die.
            auto &checker =
                dynamic_cast<ShadowChecker &>(system.llc());
            std::uint8_t line[kLineBytes] = {};
            for (std::size_t s = 0; s < checker.shadow().numSets(); ++s)
                checker.shadow().access(
                    static_cast<Addr>(s) * kLineBytes,
                    AccessType::Read, line);
            system.run(0, 2000);
        },
        "shadow check failed");
}

} // namespace
} // namespace bvc
