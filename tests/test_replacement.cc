/** @file Unit + property tests for all replacement policies. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "replacement/char_policy.hh"
#include "replacement/factory.hh"
#include "replacement/lru.hh"
#include "replacement/nru.hh"
#include "replacement/srrip.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

TEST(Lru, VictimIsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (const WayIdx w : indexRange<WayIdx>(4))
        lru.onFill(SetIdx{0}, w);
    lru.onHit(SetIdx{0}, WayIdx{0}); // order now: 1 (oldest), 2, 3, 0
    EXPECT_EQ(lru.victim(SetIdx{0}), WayIdx{1});
    lru.onHit(SetIdx{0}, WayIdx{1});
    EXPECT_EQ(lru.victim(SetIdx{0}), WayIdx{2});
}

TEST(Lru, RankIsFullLruOrder)
{
    LruPolicy lru(1, 4);
    lru.onFill(SetIdx{0}, WayIdx{2});
    lru.onFill(SetIdx{0}, WayIdx{0});
    lru.onFill(SetIdx{0}, WayIdx{3});
    lru.onFill(SetIdx{0}, WayIdx{1});
    const auto order = lru.rank(SetIdx{0});
    EXPECT_EQ(order, (std::vector<WayIdx>{WayIdx{2}, WayIdx{0},
                                          WayIdx{3}, WayIdx{1}}));
}

TEST(Lru, StackPositionMatchesPaperExample)
{
    // Section III example: MRU line = stack position 0.
    LruPolicy lru(1, 8);
    for (const WayIdx w : indexRange<WayIdx>(8))
        lru.onFill(SetIdx{0}, w);
    EXPECT_EQ(lru.stackPosition(SetIdx{0}, WayIdx{7}), 0u); // most recent
    EXPECT_EQ(lru.stackPosition(SetIdx{0}, WayIdx{0}), 7u); // least
}

TEST(Lru, InvalidateMakesWayPreferredVictim)
{
    LruPolicy lru(1, 4);
    for (const WayIdx w : indexRange<WayIdx>(4))
        lru.onFill(SetIdx{0}, w);
    lru.onInvalidate(SetIdx{0}, WayIdx{3});
    EXPECT_EQ(lru.victim(SetIdx{0}), WayIdx{3});
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.onFill(SetIdx{0}, WayIdx{0});
    lru.onFill(SetIdx{0}, WayIdx{1});
    lru.onFill(SetIdx{1}, WayIdx{1});
    lru.onFill(SetIdx{1}, WayIdx{0});
    EXPECT_EQ(lru.victim(SetIdx{0}), WayIdx{0});
    EXPECT_EQ(lru.victim(SetIdx{1}), WayIdx{1});
}

TEST(Nru, FreshPolicyMarksAllCandidates)
{
    NruPolicy nru(1, 4);
    for (const WayIdx w : indexRange<WayIdx>(4))
        EXPECT_TRUE(nru.candidateBit(SetIdx{0}, w));
}

TEST(Nru, TouchClearsBit)
{
    NruPolicy nru(1, 4);
    nru.onFill(SetIdx{0}, WayIdx{2});
    EXPECT_FALSE(nru.candidateBit(SetIdx{0}, WayIdx{2}));
    EXPECT_TRUE(nru.candidateBit(SetIdx{0}, WayIdx{0}));
}

TEST(Nru, LastClearRemarksOthers)
{
    NruPolicy nru(1, 3);
    nru.onFill(SetIdx{0}, WayIdx{0});
    nru.onFill(SetIdx{0}, WayIdx{1});
    nru.onFill(SetIdx{0}, WayIdx{2}); // last candidate -> 0/1 re-marked
    EXPECT_TRUE(nru.candidateBit(SetIdx{0}, WayIdx{0}));
    EXPECT_TRUE(nru.candidateBit(SetIdx{0}, WayIdx{1}));
    EXPECT_FALSE(nru.candidateBit(SetIdx{0}, WayIdx{2}));
}

TEST(Nru, VictimIsFirstCandidate)
{
    NruPolicy nru(1, 4);
    nru.onFill(SetIdx{0}, WayIdx{0});
    nru.onFill(SetIdx{0}, WayIdx{1});
    EXPECT_EQ(nru.victim(SetIdx{0}), WayIdx{2});
}

TEST(Nru, PreferredVictimsAreExactlyCandidateBits)
{
    NruPolicy nru(1, 4);
    nru.onFill(SetIdx{0}, WayIdx{1});
    nru.onHit(SetIdx{0}, WayIdx{3});
    const auto candidates = nru.preferredVictims(SetIdx{0});
    EXPECT_EQ(candidates, (std::vector<WayIdx>{WayIdx{0}, WayIdx{2}}));
}

TEST(Srrip, InsertsAtLongInterval)
{
    SrripPolicy srrip(1, 4);
    srrip.onFill(SetIdx{0}, WayIdx{1});
    EXPECT_EQ(srrip.rrpv(SetIdx{0}, WayIdx{1}), SrripPolicy::kInsertRrpv);
}

TEST(Srrip, HitPromotesToZero)
{
    SrripPolicy srrip(1, 4);
    srrip.onFill(SetIdx{0}, WayIdx{1});
    srrip.onHit(SetIdx{0}, WayIdx{1});
    EXPECT_EQ(srrip.rrpv(SetIdx{0}, WayIdx{1}), 0u);
}

TEST(Srrip, AgingCreatesVictimWhenNoneDistant)
{
    SrripPolicy srrip(1, 2);
    srrip.onFill(SetIdx{0}, WayIdx{0});
    srrip.onFill(SetIdx{0}, WayIdx{1});
    srrip.onHit(SetIdx{0}, WayIdx{0}); // rrpv: 0, 2
    const auto order = srrip.rank(SetIdx{0});
    EXPECT_EQ(order.front(), WayIdx{1});
    // Aging raised way 1 to max while keeping relative order.
    EXPECT_EQ(srrip.rrpv(SetIdx{0}, WayIdx{1}), SrripPolicy::kMaxRrpv);
    EXPECT_EQ(srrip.rrpv(SetIdx{0}, WayIdx{0}), 1u);
}

TEST(Srrip, PreferredVictimsAreMaxRrpvOnly)
{
    SrripPolicy srrip(1, 4);
    for (const WayIdx w : indexRange<WayIdx>(4))
        srrip.onFill(SetIdx{0}, w);
    srrip.onHit(SetIdx{0}, WayIdx{2});
    const auto candidates = srrip.preferredVictims(SetIdx{0});
    // Fills sit at 2, aged to 3; way 2 at 0 aged to 1 -> not candidate.
    EXPECT_EQ(candidates.size(), 3u);
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                          WayIdx{2}) == candidates.end());
}

TEST(Char, DowngradeHintMarksLineInHintLeaderSets)
{
    CharPolicy policy(64, 4);
    // Set 0 is a LeaderHint set (set % 32 == 0).
    policy.onFill(SetIdx{0}, WayIdx{0});
    policy.onFill(SetIdx{0}, WayIdx{1});
    policy.onFill(SetIdx{0}, WayIdx{2});
    policy.downgradeHint(SetIdx{0}, WayIdx{1});
    const auto order = policy.rank(SetIdx{0});
    // Way 1 was downgraded: it must be in the candidate class.
    const auto candidates = policy.preferredVictims(SetIdx{0});
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                          WayIdx{1}) != candidates.end());
    (void)order;
}

TEST(Char, HintsStartDisabledUntilEvidence)
{
    CharPolicy policy(64, 4);
    EXPECT_FALSE(policy.hintsEnabled());
}

TEST(Char, DeadHintedLinesEnableHints)
{
    CharPolicy policy(64, 4);
    // Set 1 is the no-hint leader. Repeatedly: line filled, hinted,
    // then chosen as the natural NRU victim without a rehit — the
    // evidence that hints predict death correctly.
    for (int round = 0; round < 64; ++round) {
        for (const WayIdx w : indexRange<WayIdx>(4))
            policy.onFill(SetIdx{1}, w);
        policy.downgradeHint(SetIdx{1}, WayIdx{0});
        (void)policy.rank(SetIdx{1}); // victim scan sees the dead line
        policy.onInvalidate(SetIdx{1}, WayIdx{0});
    }
    EXPECT_TRUE(policy.hintsEnabled());
}

TEST(Char, RehitsOnHintedLinesDisableHints)
{
    CharPolicy policy(64, 16);
    // In the hint-leader set, repeatedly downgrade a line and rehit it:
    // evidence that hints evict useful lines.
    policy.onFill(SetIdx{0}, WayIdx{3});
    for (int i = 0; i < 10; ++i) {
        policy.downgradeHint(SetIdx{0}, WayIdx{3});
        policy.onHit(SetIdx{0}, WayIdx{3});
    }
    EXPECT_FALSE(policy.hintsEnabled());
}

TEST(Char, FollowerSetsIgnoreHintsWhenDisabled)
{
    CharPolicy policy(64, 4);
    // Disable hints via leader-set rehits.
    policy.onFill(SetIdx{0}, WayIdx{0});
    for (int i = 0; i < 10; ++i) {
        policy.downgradeHint(SetIdx{0}, WayIdx{0});
        policy.onHit(SetIdx{0}, WayIdx{0});
    }
    ASSERT_FALSE(policy.hintsEnabled());
    // Set 5 is a follower; hint should not mark the line now.
    policy.onFill(SetIdx{5}, WayIdx{2});
    policy.onFill(SetIdx{5}, WayIdx{3});
    policy.downgradeHint(SetIdx{5}, WayIdx{2});
    const auto candidates = policy.preferredVictims(SetIdx{5});
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                          WayIdx{2}) == candidates.end());
}

class ReplacementProperty
    : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(ReplacementProperty, RankIsAlwaysAPermutation)
{
    auto policy = makeReplacement(GetParam(), 4, 8);
    Rng rng(1);
    for (int step = 0; step < 2000; ++step) {
        const SetIdx set{rng.range(4)};
        const WayIdx way{rng.range(8)};
        switch (rng.range(4)) {
          case 0: policy->onFill(set, way); break;
          case 1: policy->onHit(set, way); break;
          case 2: policy->onInvalidate(set, way); break;
          default: {
            const auto order = policy->rank(set);
            std::set<WayIdx> unique(order.begin(), order.end());
            ASSERT_EQ(order.size(), 8u);
            ASSERT_EQ(unique.size(), 8u);
            ASSERT_TRUE(unique.rbegin()->get() < 8);
            break;
          }
        }
    }
}

TEST_P(ReplacementProperty, PreferredVictimsAreValidWays)
{
    auto policy = makeReplacement(GetParam(), 2, 8);
    Rng rng(2);
    for (int step = 0; step < 500; ++step) {
        const SetIdx set{rng.range(2)};
        policy->onFill(set, WayIdx{rng.range(8)});
        const auto candidates = policy->preferredVictims(set);
        ASSERT_FALSE(candidates.empty());
        for (const WayIdx way : candidates)
            ASSERT_LT(way.get(), 8u);
    }
}

TEST_P(ReplacementProperty, VictimIsFirstOfRank)
{
    auto policy = makeReplacement(GetParam(), 1, 4);
    // Random policy re-ranks every call, so only check determinism for
    // stateful policies.
    if (GetParam() == ReplacementKind::Random)
        return;
    policy->onFill(SetIdx{0}, WayIdx{0});
    policy->onFill(SetIdx{0}, WayIdx{2});
    EXPECT_EQ(policy->victim(SetIdx{0}), policy->rank(SetIdx{0}).front());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReplacementProperty,
    ::testing::ValuesIn(allReplacementKinds()),
    [](const ::testing::TestParamInfo<ReplacementKind> &info) {
        return replacementName(info.param);
    });

TEST(ReplacementFactory, NamesRoundTrip)
{
    for (const auto kind : allReplacementKinds()) {
        const auto policy = makeReplacement(kind, 2, 2);
        EXPECT_EQ(policy->name(), replacementName(kind));
        EXPECT_EQ(policy->sets(), 2u);
        EXPECT_EQ(policy->ways(), 2u);
    }
}

} // namespace
} // namespace bvc
