/** @file Unit tests for the stride and stream prefetchers. */

#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

TEST(StridePrefetcher, LearnsConstantStride)
{
    StridePrefetcher pf("pf", 256, 2);
    std::vector<Addr> out;
    const Addr pc = 0x400;
    for (unsigned i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(pc, 0x10000 + i * 128, true, out);
    }
    ASSERT_FALSE(out.empty());
    // Prefetches run ahead with the learned stride (2 blocks).
    EXPECT_EQ(out[0], 0x10000 + 7 * 128 + 128);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1], 0x10000 + 7 * 128 + 256);
}

TEST(StridePrefetcher, LearnsNegativeStride)
{
    StridePrefetcher pf("pf", 256, 1);
    std::vector<Addr> out;
    const Addr pc = 0x404;
    for (unsigned i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(pc, 0x40000 - i * kLineBytes, true, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x40000 - 8 * kLineBytes);
}

TEST(StridePrefetcher, NoPrefetchOnRandomAddresses)
{
    StridePrefetcher pf("pf", 256, 2);
    Rng rng(1);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 100; ++i)
        pf.observe(0x400, rng.next() & ~0x3FULL, true, out);
    // Random deltas never build confidence.
    EXPECT_LT(out.size(), 6u);
}

TEST(StridePrefetcher, DistinctPcsTrainIndependently)
{
    StridePrefetcher pf("pf", 256, 1);
    std::vector<Addr> a, b;
    for (unsigned i = 0; i < 8; ++i) {
        a.clear();
        b.clear();
        pf.observe(0x400, 0x10000 + i * kLineBytes, true, a);
        pf.observe(0x500, 0x90000 + i * 2 * kLineBytes, true, b);
    }
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(a[0], 0x10000 + 8 * kLineBytes);
    EXPECT_EQ(b[0], 0x90000 + 7 * 2 * kLineBytes + 2 * kLineBytes);
}

TEST(StridePrefetcher, SameBlockAccessesAreIgnored)
{
    StridePrefetcher pf("pf", 256, 1);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 20; ++i)
        pf.observe(0x400, 0x10000, true, out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, DetectsAscendingStream)
{
    StreamPrefetcher pf("pf", 16, 2, 1);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 6; ++i) {
        out.clear();
        pf.observe(0, 0x100000 + i * kLineBytes, true, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_GT(out[0], 0x100000 + 5 * kLineBytes);
}

TEST(StreamPrefetcher, DetectsDescendingStream)
{
    StreamPrefetcher pf("pf", 16, 1, 1);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 6; ++i) {
        out.clear();
        pf.observe(0, 0x200000 - i * kLineBytes, true, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out[0], 0x200000 - 5 * kLineBytes);
}

TEST(StreamPrefetcher, TracksMultipleConcurrentStreams)
{
    StreamPrefetcher pf("pf", 16, 1, 1);
    std::vector<Addr> a, b;
    for (unsigned i = 0; i < 6; ++i) {
        a.clear();
        b.clear();
        pf.observe(0, 0x100000 + i * kLineBytes, true, a);
        pf.observe(0, 0x900000 + i * kLineBytes, true, b);
    }
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
}

TEST(StreamPrefetcher, TrainedStreamCrossesRegionBoundary)
{
    StreamPrefetcher pf("pf", 16, 1, 1);
    std::vector<Addr> out;
    // Train right up to a 4KB boundary, then cross it: the stream must
    // keep prefetching without retraining.
    const Addr base = 0x100000 + 4096 - 4 * kLineBytes;
    for (unsigned i = 0; i < 6; ++i) {
        out.clear();
        pf.observe(0, base + i * kLineBytes, true, out);
    }
    EXPECT_FALSE(out.empty());
}

TEST(StreamPrefetcher, RandomTrafficStaysQuiet)
{
    StreamPrefetcher pf("pf", 16, 2, 4);
    Rng rng(3);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 200; ++i)
        pf.observe(0, (rng.next() % (1 << 28)) & ~0x3FULL, true, out);
    EXPECT_LT(out.size(), 30u);
}

TEST(StreamPrefetcher, PrefetchesAreBlockAligned)
{
    StreamPrefetcher pf("pf", 16, 2, 2);
    std::vector<Addr> out;
    for (unsigned i = 0; i < 10; ++i)
        pf.observe(0, 0x100000 + i * kLineBytes + 8, true, out);
    for (const Addr pa : out)
        EXPECT_EQ(pa % kLineBytes, 0u);
}

} // namespace
} // namespace bvc
