/** @file Tests for the functional DCC capacity model. */

#include <gtest/gtest.h>

#include "core/dcc_cache.hh"
#include "test_lines.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

constexpr std::size_t kSize = 16 * 1024;
constexpr std::size_t kWays = 4;

// Super-blocks interleave across 64 sets: blocks 4 lines apart share a
// set only every 64 super-blocks.
Addr
sbAddr(unsigned superBlock, unsigned sub = 0)
{
    // Same-set super-blocks are 64 super-block strides apart.
    return 0x100000 +
        static_cast<Addr>(superBlock) * 64 * DccLlc::kSubBlocks *
            kLineBytes +
        sub * kLineBytes;
}

TEST(Dcc, NeighboringLinesShareASuperBlockTag)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line small = smallLine();
    // Four neighbours: one super-block fill + three sub-block fills.
    for (unsigned s = 0; s < 4; ++s)
        llc.access(0x100000 + s * kLineBytes, AccessType::Read,
                   small.data());
    EXPECT_EQ(llc.stats().get("superblock_fills"), 1u);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_TRUE(llc.probe(0x100000 + s * kLineBytes));
}

TEST(Dcc, CompressibleDataExceedsPhysicalLines)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line small = smallLine(); // 5 segments
    // One set: 4 super-blocks x 4 sub-blocks = 16 lines at 5 segments
    // = 80 segments > 64: not all fit, but far more than 4 lines do.
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            llc.access(sbAddr(sbIdx, s), AccessType::Read,
                       small.data());
    unsigned resident = 0;
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            resident += llc.probe(sbAddr(sbIdx, s));
    EXPECT_GT(resident, kWays); // beats the uncompressed capacity
    EXPECT_LE(llc.usedSegments(llc.setIndex(sbAddr(0))).get(),
              kWays * kSegmentsPerLine);
}

TEST(Dcc, IncompressibleDataCapsAtPoolSize)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx) {
        for (unsigned s = 0; s < 4; ++s) {
            const Line line = randomLine(sbIdx * 4 + s);
            llc.access(sbAddr(sbIdx, s), AccessType::Read, line.data());
        }
    }
    unsigned resident = 0;
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            resident += llc.probe(sbAddr(sbIdx, s));
    EXPECT_LE(resident, kWays); // 16-segment lines: pool-bound
}

TEST(Dcc, SuperBlockEvictionBackInvalidatesAllSubBlocks)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line big = randomLine(1);
    // Fill 4 super-blocks each with one incompressible sub-block; the
    // set's pool (64 segments) is now full.
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        llc.access(sbAddr(sbIdx), AccessType::Read, big.data());
    // Fill all 4 sub-blocks of a fresh super-block with small lines:
    // whole super-blocks must be evicted.
    const Line small = smallLine();
    LlcResult last;
    for (unsigned s = 0; s < 4; ++s)
        last = llc.access(sbAddr(10, s), AccessType::Read,
                          small.data());
    EXPECT_GE(llc.stats().get("superblock_evictions"), 1u);
    EXPECT_TRUE(llc.probe(sbAddr(10, 3)));
}

TEST(Dcc, DirtySubBlocksWriteBackOnEviction)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line big = randomLine(2);
    llc.access(sbAddr(0), AccessType::Read, big.data());
    llc.access(sbAddr(0), AccessType::Writeback, big.data());
    std::size_t writebacks = 0;
    for (unsigned sbIdx = 1; sbIdx <= 6; ++sbIdx) {
        const Line filler = randomLine(sbIdx + 10);
        const LlcResult r =
            llc.access(sbAddr(sbIdx), AccessType::Read, filler.data());
        writebacks += r.memWritebacks.size();
    }
    EXPECT_GE(writebacks, 1u);
}

TEST(Dcc, WritebackGrowthStaysWithinPool)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line small = smallLine();
    for (unsigned sbIdx = 0; sbIdx < 3; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            llc.access(sbAddr(sbIdx, s), AccessType::Read,
                       small.data());
    const Line big = randomLine(5);
    llc.access(sbAddr(0), AccessType::Writeback, big.data());
    EXPECT_LE(llc.usedSegments(llc.setIndex(sbAddr(0))).get(),
              kWays * kSegmentsPerLine);
    EXPECT_TRUE(llc.probe(sbAddr(0)));
}

TEST(Dcc, PoolInvariantUnderRandomTraffic)
{
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const DataPattern pattern(DataPatternKind::MixedGood, 6);
    Rng rng(88);
    Line line{};
    for (int step = 0; step < 30000; ++step) {
        const Addr blk = 0x200000 + rng.range(4096) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const bool wb = rng.chance(0.1) && llc.probe(blk);
        llc.access(blk, wb ? AccessType::Writeback : AccessType::Read,
                   line.data());
        if (step % 1000 == 0) {
            for (const SetIdx set : indexRange<SetIdx>(llc.numSets()))
                ASSERT_LE(llc.usedSegments(set).get(),
                          kWays * kSegmentsPerLine);
        }
    }
}

TEST(Dcc, SpatialLocalityBeatsVscOnTagReach)
{
    // DCC's super-block tags cover 4x the lines per tag: with spatial
    // locality it holds more lines than the tag-limited VSC would.
    const BdiCompressor bdi;
    DccLlc llc(kSize, kWays, bdi);
    const Line zero = zeroLine(); // ~0 segments: tag-bound capacity
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            llc.access(sbAddr(sbIdx, s), AccessType::Read, zero.data());
    unsigned resident = 0;
    for (unsigned sbIdx = 0; sbIdx < 4; ++sbIdx)
        for (unsigned s = 0; s < 4; ++s)
            resident += llc.probe(sbAddr(sbIdx, s));
    // All 16 zero lines fit under 4 super-block tags (VSC-2X caps at
    // 8 = 2x tags).
    EXPECT_EQ(resident, 16u);
}

} // namespace
} // namespace bvc
