/** @file End-to-end single-core system tests. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/workload_suite.hh"

namespace bvc
{
namespace
{

TraceParams
quickTrace()
{
    const WorkloadSuite suite;
    // A compression-friendly cache-sensitive trace.
    return suite.all()[suite.friendlyIndices().front()].params;
}

TEST(System, ProducesPlausibleIpc)
{
    System system(SystemConfig::benchDefaults(), quickTrace());
    const RunResult result = system.run(20000, 50000);
    EXPECT_EQ(result.instructions, 50000u);
    EXPECT_GT(result.ipc, 0.01);
    EXPECT_LT(result.ipc, 4.0);
    EXPECT_GT(result.llcDemandAccesses, 0u);
    EXPECT_GT(result.dramReads, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    const SystemConfig cfg = SystemConfig::benchDefaults();
    System a(cfg, quickTrace());
    System b(cfg, quickTrace());
    const RunResult ra = a.run(10000, 30000);
    const RunResult rb = b.run(10000, 30000);
    EXPECT_DOUBLE_EQ(ra.ipc, rb.ipc);
    EXPECT_EQ(ra.dramReads, rb.dramReads);
    EXPECT_EQ(ra.llcDemandHits, rb.llcDemandHits);
}

TEST(System, BaseVictimNeverHasMoreDemandMisses)
{
    SystemConfig base = SystemConfig::benchDefaults();
    SystemConfig bv = base;
    bv.arch = LlcArch::BaseVictim;
    const TraceParams trace = quickTrace();
    System sysBase(base, trace);
    System sysBv(bv, trace);
    const RunResult rb = sysBase.run(20000, 60000);
    const RunResult rv = sysBv.run(20000, 60000);
    // The paper's guarantee, end-to-end through the full hierarchy.
    EXPECT_LE(rv.llcDemandMisses, rb.llcDemandMisses);
    EXPECT_GT(rv.llcVictimHits, 0u);
}

TEST(System, CompressedArchesSeeExtraLatencyOnly)
{
    // On an incompressible workload the Base-Victim cache behaves like
    // the baseline but pays tag latency: IPC within a whisker.
    const WorkloadSuite suite;
    const TraceParams trace =
        suite.all()[suite.unfriendlyIndices().front()].params;
    SystemConfig base = SystemConfig::benchDefaults();
    SystemConfig bv = base;
    bv.arch = LlcArch::BaseVictim;
    System sysBase(base, trace);
    System sysBv(bv, trace);
    const RunResult rb = sysBase.run(20000, 60000);
    const RunResult rv = sysBv.run(20000, 60000);
    EXPECT_LE(rv.llcDemandMisses, rb.llcDemandMisses);
    EXPECT_GT(rv.ipc, rb.ipc * 0.95);
}

TEST(System, LlcScaleAddsWaysAndLatency)
{
    const SystemConfig base = SystemConfig::benchDefaults();
    const SystemConfig big = base.withLlcScale(1.5);
    EXPECT_EQ(big.llcWays, 24u);
    EXPECT_EQ(big.llcBytes, base.llcBytes * 3 / 2);
    EXPECT_EQ(big.hier.llcLatency, base.hier.llcLatency + 1);
    const SystemConfig same = base.withLlcScale(1.0);
    EXPECT_EQ(same.llcBytes, base.llcBytes);
    EXPECT_EQ(same.hier.llcLatency, base.hier.llcLatency);
}

TEST(System, PaperDefaultsMatchSectionV)
{
    const SystemConfig cfg = SystemConfig::paperDefaults();
    EXPECT_EQ(cfg.llcBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.llcWays, 16u);
    EXPECT_EQ(cfg.hier.l1dBytes, 32u * 1024);
    EXPECT_EQ(cfg.hier.l2Bytes, 256u * 1024);
    EXPECT_EQ(cfg.hier.l1Latency, 3u);
    EXPECT_EQ(cfg.hier.l2Latency, 10u);
    EXPECT_EQ(cfg.hier.llcLatency, 24u);
    EXPECT_EQ(cfg.dramTiming.tCl, 15u);
    EXPECT_EQ(cfg.dramTiming.tRas, 34u);
}

TEST(System, BenchDefaultsPreserveCapacityRatios)
{
    const SystemConfig bench = SystemConfig::benchDefaults();
    const SystemConfig paper = SystemConfig::paperDefaults();
    EXPECT_EQ(paper.llcBytes / bench.llcBytes,
              paper.hier.l2Bytes / bench.hier.l2Bytes);
    EXPECT_EQ(paper.llcBytes / bench.llcBytes,
              paper.hier.l1dBytes / bench.hier.l1dBytes);
}

TEST(System, AllArchitecturesRunAllAccessTypes)
{
    for (const LlcArch arch :
         {LlcArch::Uncompressed, LlcArch::TwoTagNaive,
          LlcArch::TwoTagModified, LlcArch::BaseVictim, LlcArch::Vsc}) {
        SystemConfig cfg = SystemConfig::benchDefaults();
        cfg.arch = arch;
        System system(cfg, quickTrace());
        const RunResult result = system.run(5000, 20000);
        EXPECT_GT(result.ipc, 0.0) << llcArchName(arch);
    }
}

TEST(System, SnapshotMatchesRunResult)
{
    System system(SystemConfig::benchDefaults(), quickTrace());
    const RunResult fromRun = system.run(5000, 20000);
    const RunResult fromSnapshot = system.snapshot();
    EXPECT_EQ(fromRun.dramReads, fromSnapshot.dramReads);
    EXPECT_EQ(fromRun.llcDemandHits, fromSnapshot.llcDemandHits);
    EXPECT_DOUBLE_EQ(fromRun.ipc, fromSnapshot.ipc);
}

TEST(System, PaperScaleRunsEndToEnd)
{
    // Smoke-test the full paper-sized configuration (2MB LLC) with
    // paper-scaled footprints; short window, but the whole machinery
    // (hierarchy, prefetchers, DRAM, Base-Victim LLC) must hold up.
    const WorkloadSuite suite(2 * 1024 * 1024);
    SystemConfig cfg = SystemConfig::paperDefaults();
    cfg.arch = LlcArch::BaseVictim;
    System system(cfg, suite.all()[suite.friendlyIndices()[2]].params);
    const RunResult result = system.run(20000, 50000);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.llcDemandAccesses, 0u);
}

TEST(System, NonInclusiveBaseVictimRunsEndToEnd)
{
    // Section IV.B.3 operation through the full hierarchy: dirty
    // victims park, writeback misses allocate, nothing panics.
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    cfg.llcInclusive = false;
    System system(cfg, quickTrace());
    const RunResult result = system.run(20000, 60000);
    EXPECT_GT(result.ipc, 0.0);

    SystemConfig base = SystemConfig::benchDefaults();
    System baseSystem(base, quickTrace());
    const RunResult rb = baseSystem.run(20000, 60000);
    // Dirty victims parked instead of written back: writes drop.
    EXPECT_LE(result.dramWrites, rb.dramWrites);
}

TEST(SystemDeathTest, NonInclusiveRequiresBaseVictim)
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::TwoTagNaive;
    cfg.llcInclusive = false;
    EXPECT_EXIT(System(cfg, quickTrace()),
                ::testing::ExitedWithCode(1), "non-inclusive");
}

TEST(Experiment, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Experiment, CountBelowThreshold)
{
    std::vector<TraceRatio> ratios(3);
    ratios[0].ipcRatio = 0.9;
    ratios[1].ipcRatio = 1.1;
    ratios[2].ipcRatio = 0.99;
    EXPECT_EQ(countBelow(ratios, 1.0), 2u);
}

TEST(Experiment, OptionsFromEnvDefaults)
{
    // Without env overrides, sane defaults apply.
    const ExperimentOptions opts = ExperimentOptions::fromEnv();
    EXPECT_GT(opts.warmup, 0u);
    EXPECT_GT(opts.measure, 0u);
}

TEST(Experiment, CompareOnSuiteProducesRatios)
{
    const WorkloadSuite suite;
    SystemConfig base = SystemConfig::benchDefaults();
    SystemConfig bv = base;
    bv.arch = LlcArch::BaseVictim;
    ExperimentOptions opts;
    opts.warmup = 5000;
    opts.measure = 15000;
    const std::vector<std::size_t> indices = {
        suite.friendlyIndices()[0], suite.friendlyIndices()[1]};
    const auto ratios = compareOnSuite(base, bv, suite, indices, opts);
    ASSERT_EQ(ratios.size(), 2u);
    for (const TraceRatio &r : ratios) {
        EXPECT_GT(r.ipcRatio, 0.0);
        EXPECT_GT(r.dramReadRatio, 0.0);
        EXPECT_FALSE(r.name.empty());
    }
}

} // namespace
} // namespace bvc
