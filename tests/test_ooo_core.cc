/** @file Tests for the OOO core timing model. */

#include <gtest/gtest.h>

#include <deque>

#include "compress/bdi.hh"
#include "core/uncompressed_llc.hh"
#include "cpu/ooo_core.hh"
#include "trace/data_patterns.hh"

namespace bvc
{
namespace
{

/** Hand-scripted trace for deterministic core tests. */
class ScriptedTrace : public TraceSource
{
  public:
    void
    add(InstrKind kind, Addr addr = 0, bool dep = false)
    {
        TraceRecord r;
        r.pc = 0x1000;
        r.addr = addr;
        r.kind = kind;
        r.dependsOnPrevLoad = dep;
        script_.push_back(r);
    }

    void
    addLoop(InstrKind kind, unsigned count)
    {
        for (unsigned i = 0; i < count; ++i)
            add(kind);
    }

    bool
    next(TraceRecord &record) override
    {
        if (pos_ >= script_.size())
            return false;
        record = script_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }
    std::string name() const override { return "scripted"; }

  private:
    std::vector<TraceRecord> script_;
    std::size_t pos_ = 0;
};

struct CoreFixture
{
    CoreFixture()
        : mem_(),
          llc_(64 * 1024, 8, ReplacementKind::Nru)
    {
        HierarchyConfig cfg;
        cfg.l1iBytes = 8 * 1024;
        cfg.l1dBytes = 8 * 1024;
        cfg.l2Bytes = 32 * 1024;
        cfg.prefetch = false;
        hier_ = std::make_unique<Hierarchy>(cfg, llc_, dram_, mem_);
        CoreConfig coreCfg;
        coreCfg.modelIfetch = false; // keep arithmetic exact
        core_ = std::make_unique<OooCore>(coreCfg, *hier_);
    }

    FunctionalMemory mem_;
    Dram dram_;
    UncompressedLlc llc_;
    std::unique_ptr<Hierarchy> hier_;
    std::unique_ptr<OooCore> core_;
};

TEST(OooCore, NonMemIpcEqualsFetchWidth)
{
    CoreFixture f;
    ScriptedTrace trace;
    trace.addLoop(InstrKind::NonMem, 10000);
    const CoreResult result = f.core_->run(trace, 10000);
    EXPECT_EQ(result.instructions, 10000u);
    EXPECT_NEAR(result.ipc, 4.0, 0.05);
}

TEST(OooCore, StopsAtTraceEnd)
{
    CoreFixture f;
    ScriptedTrace trace;
    trace.addLoop(InstrKind::NonMem, 100);
    const CoreResult result = f.core_->run(trace, 100000);
    EXPECT_EQ(result.instructions, 100u);
}

TEST(OooCore, IndependentLoadsOverlap)
{
    CoreFixture f;
    ScriptedTrace trace;
    // 64 independent loads to distinct lines, all L1 misses -> DRAM.
    for (unsigned i = 0; i < 64; ++i)
        trace.add(InstrKind::Load, 0x100000 + i * kLineBytes);
    const CoreResult result = f.core_->run(trace, 64);
    // With overlap, total cycles are far below 64 serialized misses.
    EXPECT_LT(result.cycles, 64ull * 150);
}

TEST(OooCore, DependentLoadsSerialize)
{
    auto runChain = [](bool dependent) {
        CoreFixture f;
        ScriptedTrace trace;
        for (unsigned i = 0; i < 64; ++i)
            trace.add(InstrKind::Load, 0x100000 + i * kLineBytes,
                      dependent);
        return f.core_->run(trace, 64).cycles;
    };
    const Cycle independent = runChain(false);
    const Cycle dependent = runChain(true);
    // Sequential lines already serialize partly on the banks/bus, so
    // the dependent chain is slower but not by the full miss latency.
    EXPECT_GT(dependent, independent * 2);
}

TEST(OooCore, RobLimitsInFlightWindow)
{
    // A long-latency load far in the past must stall fetch once the
    // window wraps (224 instructions later).
    CoreFixture f;
    ScriptedTrace trace;
    trace.add(InstrKind::Load, 0x200000); // DRAM miss
    trace.addLoop(InstrKind::NonMem, 1000);
    f.core_->run(trace, 1001);
    EXPECT_GE(f.core_->stats().get("rob_stall_events"), 1u);
}

TEST(OooCore, StoresDoNotBlockRetirement)
{
    CoreFixture f;
    ScriptedTrace trace;
    for (unsigned i = 0; i < 64; ++i)
        trace.add(InstrKind::Store, 0x300000 + i * kLineBytes);
    const CoreResult result = f.core_->run(trace, 64);
    // Stores complete in one cycle via the store buffer.
    EXPECT_LT(result.cycles, 100u);
    EXPECT_EQ(f.core_->stats().get("stores"), 64u);
}

TEST(OooCore, CachedLoadsRunNearFullWidth)
{
    CoreFixture f;
    ScriptedTrace trace;
    // Warm one line, then hammer it.
    for (unsigned i = 0; i < 2000; ++i)
        trace.add(InstrKind::Load, 0x10000);
    f.core_->run(trace, 1000); // warm
    trace.reset();
    const CoreResult result = f.core_->run(trace, 2000);
    EXPECT_GT(result.ipc, 2.0);
}

TEST(OooCore, BeginMeasurementExcludesWarmup)
{
    CoreFixture f;
    ScriptedTrace trace;
    trace.add(InstrKind::Load, 0x400000); // expensive first miss
    trace.addLoop(InstrKind::NonMem, 4000);
    for (unsigned i = 0; i < 1001; ++i)
        f.core_->step(trace);
    f.core_->beginMeasurement();
    for (unsigned i = 0; i < 3000; ++i)
        f.core_->step(trace);
    const CoreResult result = f.core_->result();
    EXPECT_EQ(result.instructions, 3000u);
    EXPECT_NEAR(result.ipc, 4.0, 0.1);
}

TEST(OooCore, RetiredCountsAllSteps)
{
    CoreFixture f;
    ScriptedTrace trace;
    trace.addLoop(InstrKind::NonMem, 50);
    while (f.core_->step(trace)) {
    }
    EXPECT_EQ(f.core_->retired(), 50u);
}

} // namespace
} // namespace bvc
