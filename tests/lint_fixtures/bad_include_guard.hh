// bvlint fixture: trips exactly BV005 (guard does not match the path).
#ifndef WRONG_GUARD_HH_
#define WRONG_GUARD_HH_

namespace bvc
{
}

#endif // WRONG_GUARD_HH_
