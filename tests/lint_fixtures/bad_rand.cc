// bvlint fixture: trips exactly BV002 (nondeterministic primitive).
#include <cstdlib>

unsigned
pickVictim(unsigned ways)
{
    return static_cast<unsigned>(rand()) % ways;
}
