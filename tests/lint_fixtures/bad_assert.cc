// bvlint fixture: trips exactly BV004 (bare assert in model code).
#include <cassert>

void
checkWays(unsigned ways)
{
    assert(ways > 0);
}
