// bvlint fixture: trips exactly BV006 (std::endl flush in output).
#include <iostream>

void
printSummary(unsigned hits)
{
    std::cout << "hits " << hits << std::endl;
}
