// bvlint fixture: trips exactly BV009 (raw mutex declarations that
// should be bvc::AnnotatedMutex). Lock holders stay clean.
#include <mutex>
#include <shared_mutex>
#include <vector>

struct Pool
{
    std::mutex mutex_;
    std::shared_mutex tableLock_;
    std::vector<std::mutex> bankLocks_;

    void touch()
    {
        // Holder templates are the legitimate std::mutex spelling.
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_lock<std::shared_mutex> writer(tableLock_);
    }
};
