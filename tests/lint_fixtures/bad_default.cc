// bvlint fixture: trips exactly BV003 (default over a project enum).
enum class AccessKind { Read, Write };

const char *
name(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Read: return "read";
      case AccessKind::Write: return "write";
      default: return "?";
    }
}
