// bvlint fixture: violates BV001-BV004, BV006, BV008 and BV009, every
// one waived -> clean. (BV010 is header-only, so it cannot trip here.)
#include <cassert>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>

struct StatGroup
{
    long &counter(const char *name);
};

struct Locked
{
    std::mutex mutex_; // bvlint-allow(BV009)
};

enum class Kind { A, B };

struct Model
{
    StatGroup stats_;

    void touch()
    {
        ++stats_.counter("hits"); // bvlint-allow(BV001)
        // bvlint-allow(BV002)
        (void)rand();
        assert(true); // bvlint-allow(BV004)
        std::cout << "touched" << std::endl; // bvlint-allow(BV006)
    }
};

int
unwrap(const std::unique_ptr<int> &p)
{
    return *p.get(); // bvlint-allow(BV008)
}

int
pick(Kind kind)
{
    switch (kind) {
      case Kind::A: return 0;
      default: return 1; // bvlint-allow(BV003)
    }
}
