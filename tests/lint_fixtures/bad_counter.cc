// bvlint fixture: trips exactly BV001 (per-access Counter lookup).
#include <string>

struct StatGroup
{
    long &counter(const std::string &name);
};

struct Model
{
    StatGroup stats_;

    void access(bool hit)
    {
        if (hit)
            ++stats_.counter("hits");
    }
};
