// bvlint fixture: trips exactly BV007 (value-returning parse/read/
// verify functions declared without [[nodiscard]]).
#ifndef BVC_TESTS_LINT_FIXTURES_BAD_NODISCARD_HH_
#define BVC_TESTS_LINT_FIXTURES_BAD_NODISCARD_HH_

#include <cstdint>
#include <string>

namespace fixture
{

// One-line declaration style: flagged.
bool parseHeaderLine(const std::string &line, std::uint64_t &value);

// Two-line style with the return type above the name: flagged.
inline std::uint64_t
readMagic(const std::uint8_t *bytes)
{
    return bytes[0];
}

struct Blob
{
    // Member declaration: flagged.
    bool verifyChecksum() const;

    // void return: nothing to discard, stays clean.
    void readInto(std::string &out);
};

// Annotated declarations stay clean, in both styles.
[[nodiscard]] bool parseFlag(const std::string &text);

[[nodiscard]] inline std::uint64_t
readTag(const std::uint8_t *bytes)
{
    return bytes[1];
}

} // namespace fixture

#endif // BVC_TESTS_LINT_FIXTURES_BAD_NODISCARD_HH_
