// bvlint fixture: raw smart-pointer unwraps through .get() (BV008).
#include <memory>

struct Box
{
    int value = 0;
};

int
deref(const std::unique_ptr<int> &p)
{
    int total = *p.get();
    if (p.get() != nullptr)
        total += *p.get();
    return total;
}

int
arrow(const std::shared_ptr<Box> &b)
{
    if (b.get() == nullptr)
        return 0;
    return b.get()->value;
}
