// bvlint fixture: trips exactly BV010 (undocumented public members).

#ifndef BVC_TESTS_LINT_FIXTURES_BAD_MEMBER_DOC_HH_
#define BVC_TESTS_LINT_FIXTURES_BAD_MEMBER_DOC_HH_

#include <cstddef>
#include <string>

struct Config
{
    std::size_t ways = 8;
    std::string label;        //!< documented: trailing note
    /** Documented: block comment above. */
    std::size_t sets = 64;
    // Documented: plain comment above.
    bool inclusive = true;
    double undocumented = 0.0;
};

class Model
{
  public:
    std::size_t visible = 0;

    void reset(); // functions are BV010-exempt

  private:
    std::size_t hidden = 0; // private members are BV010-exempt
};

enum class Kind
{
    A, // enumerators are not data members
    B,
};

#endif // BVC_TESTS_LINT_FIXTURES_BAD_MEMBER_DOC_HH_
