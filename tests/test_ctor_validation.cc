/**
 * @file
 * Constructor-validation death tests: every cache model must reject a
 * zero associativity BEFORE deriving its set count (the set-count
 * division would otherwise divide by zero in the member-initializer
 * list, crashing ahead of any panicIf), and must keep rejecting
 * non-power-of-two set counts.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "compress/bdi.hh"
#include "core/base_victim_cache.hh"
#include "core/dcc_cache.hh"
#include "core/two_tag_array.hh"
#include "core/uncompressed_llc.hh"
#include "core/vsc_cache.hh"

namespace bvc
{
namespace
{

constexpr std::size_t kSize = 16 * 1024;

TEST(CtorValidationDeathTest, CacheRejectsZeroWays)
{
    EXPECT_DEATH(Cache("l1d", kSize, 0, ReplacementKind::Lru, 3),
                 "cache associativity must be nonzero");
}

TEST(CtorValidationDeathTest, UncompressedLlcRejectsZeroWays)
{
    EXPECT_DEATH(UncompressedLlc(kSize, 0, ReplacementKind::Nru),
                 "LLC associativity must be nonzero");
}

TEST(CtorValidationDeathTest, BaseVictimRejectsZeroWays)
{
    BdiCompressor bdi;
    EXPECT_DEATH(BaseVictimLlc(kSize, 0, ReplacementKind::Nru,
                               VictimReplKind::Ecm, bdi),
                 "Base-Victim LLC associativity must be nonzero");
}

TEST(CtorValidationDeathTest, TwoTagRejectsZeroWays)
{
    BdiCompressor bdi;
    EXPECT_DEATH(TwoTagNaiveLlc(kSize, 0, ReplacementKind::Nru, bdi),
                 "two-tag LLC associativity must be nonzero");
    EXPECT_DEATH(TwoTagModifiedLlc(kSize, 0, ReplacementKind::Nru, bdi),
                 "two-tag LLC associativity must be nonzero");
}

TEST(CtorValidationDeathTest, VscRejectsZeroWays)
{
    BdiCompressor bdi;
    EXPECT_DEATH(VscLlc(kSize, 0, bdi),
                 "VSC associativity must be nonzero");
}

TEST(CtorValidationDeathTest, DccRejectsZeroWays)
{
    BdiCompressor bdi;
    EXPECT_DEATH(DccLlc(kSize, 0, bdi),
                 "DCC associativity must be nonzero");
}

TEST(CtorValidationDeathTest, NonPowerOfTwoSetCountStillRejected)
{
    // 3 sets x 4 ways x 64B: associativity is fine, set count is not.
    const std::size_t bad = 3 * 4 * kLineBytes;
    BdiCompressor bdi;
    EXPECT_DEATH(UncompressedLlc(bad, 4, ReplacementKind::Nru),
                 "LLC set count must be a nonzero power of two");
    EXPECT_DEATH(VscLlc(bad, 4, bdi),
                 "VSC set count must be a nonzero power of two");
}

} // namespace
} // namespace bvc
