/** @file Unit tests for the DRRIP extension policy. */

#include <gtest/gtest.h>

#include "replacement/drrip.hh"

namespace bvc
{
namespace
{

TEST(Drrip, SrripLeaderInsertsAtLong)
{
    DrripPolicy drrip(64, 4);
    // Set 0 is the SRRIP leader.
    drrip.onFill(0, 1);
    EXPECT_EQ(drrip.rrpv(0, 1), DrripPolicy::kSrripInsert);
}

TEST(Drrip, BrripLeaderInsertsMostlyDistant)
{
    DrripPolicy drrip(64, 4);
    // Set 1 is the BRRIP leader: most fills land at max RRPV.
    unsigned distant = 0;
    for (unsigned i = 0; i < DrripPolicy::kBimodalPeriod; ++i) {
        drrip.onFill(1, i % 4);
        distant += drrip.rrpv(1, i % 4) == DrripPolicy::kMaxRrpv;
    }
    EXPECT_EQ(distant, DrripPolicy::kBimodalPeriod - 1);
}

TEST(Drrip, HitPromotesToZero)
{
    DrripPolicy drrip(64, 4);
    drrip.onFill(5, 2);
    drrip.onHit(5, 2);
    EXPECT_EQ(drrip.rrpv(5, 2), 0u);
}

TEST(Drrip, DuelingSelectsBrripWhenSrripLeadersMissMore)
{
    DrripPolicy drrip(64, 4);
    EXPECT_FALSE(drrip.brripSelected());
    // Hammer the SRRIP leader set with fills (misses).
    for (unsigned i = 0; i < 100; ++i)
        drrip.onFill(0, i % 4);
    EXPECT_TRUE(drrip.brripSelected());
    // Now hammer the BRRIP leader: selector swings back.
    for (unsigned i = 0; i < 300; ++i)
        drrip.onFill(1, i % 4);
    EXPECT_FALSE(drrip.brripSelected());
}

TEST(Drrip, FollowersTrackTheSelector)
{
    DrripPolicy drrip(64, 4);
    for (unsigned i = 0; i < 100; ++i)
        drrip.onFill(0, i % 4); // push toward BRRIP
    ASSERT_TRUE(drrip.brripSelected());
    // Follower set 5 now inserts mostly distant.
    unsigned distant = 0;
    for (unsigned i = 0; i < 16; ++i) {
        drrip.onFill(5, i % 4);
        distant += drrip.rrpv(5, i % 4) == DrripPolicy::kMaxRrpv;
    }
    EXPECT_GE(distant, 14u);
}

TEST(Drrip, RankAgesLikeSrrip)
{
    DrripPolicy drrip(64, 2);
    drrip.onFill(5, 0);
    drrip.onFill(5, 1);
    drrip.onHit(5, 0);
    const auto order = drrip.rank(5);
    EXPECT_EQ(order.front(), 1u);
    EXPECT_EQ(drrip.rrpv(5, 1), DrripPolicy::kMaxRrpv);
}

TEST(Drrip, PreferredVictimsAreMaxRrpv)
{
    DrripPolicy drrip(64, 4);
    for (unsigned w = 0; w < 4; ++w)
        drrip.onFill(5, w);
    drrip.onHit(5, 3);
    const auto candidates = drrip.preferredVictims(5);
    for (const auto w : candidates)
        EXPECT_EQ(drrip.rrpv(5, w), DrripPolicy::kMaxRrpv);
    EXPECT_FALSE(candidates.empty());
}

} // namespace
} // namespace bvc
