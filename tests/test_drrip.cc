/** @file Unit tests for the DRRIP extension policy. */

#include <gtest/gtest.h>

#include "replacement/drrip.hh"

namespace bvc
{
namespace
{

TEST(Drrip, SrripLeaderInsertsAtLong)
{
    DrripPolicy drrip(64, 4);
    // Set 0 is the SRRIP leader.
    drrip.onFill(SetIdx{0}, WayIdx{1});
    EXPECT_EQ(drrip.rrpv(SetIdx{0}, WayIdx{1}), DrripPolicy::kSrripInsert);
}

TEST(Drrip, BrripLeaderInsertsMostlyDistant)
{
    DrripPolicy drrip(64, 4);
    // Set 1 is the BRRIP leader: most fills land at max RRPV.
    unsigned distant = 0;
    for (unsigned i = 0; i < DrripPolicy::kBimodalPeriod; ++i) {
        drrip.onFill(SetIdx{1}, WayIdx{i % 4});
        distant += drrip.rrpv(SetIdx{1}, WayIdx{i % 4}) == DrripPolicy::kMaxRrpv;
    }
    EXPECT_EQ(distant, DrripPolicy::kBimodalPeriod - 1);
}

TEST(Drrip, HitPromotesToZero)
{
    DrripPolicy drrip(64, 4);
    drrip.onFill(SetIdx{5}, WayIdx{2});
    drrip.onHit(SetIdx{5}, WayIdx{2});
    EXPECT_EQ(drrip.rrpv(SetIdx{5}, WayIdx{2}), 0u);
}

TEST(Drrip, DuelingSelectsBrripWhenSrripLeadersMissMore)
{
    DrripPolicy drrip(64, 4);
    EXPECT_FALSE(drrip.brripSelected());
    // Hammer the SRRIP leader set with fills (misses).
    for (unsigned i = 0; i < 100; ++i)
        drrip.onFill(SetIdx{0}, WayIdx{i % 4});
    EXPECT_TRUE(drrip.brripSelected());
    // Now hammer the BRRIP leader: selector swings back.
    for (unsigned i = 0; i < 300; ++i)
        drrip.onFill(SetIdx{1}, WayIdx{i % 4});
    EXPECT_FALSE(drrip.brripSelected());
}

TEST(Drrip, FollowersTrackTheSelector)
{
    DrripPolicy drrip(64, 4);
    for (unsigned i = 0; i < 100; ++i)
        drrip.onFill(SetIdx{0}, WayIdx{i % 4}); // push toward BRRIP
    ASSERT_TRUE(drrip.brripSelected());
    // Follower set 5 now inserts mostly distant.
    unsigned distant = 0;
    for (unsigned i = 0; i < 16; ++i) {
        drrip.onFill(SetIdx{5}, WayIdx{i % 4});
        distant += drrip.rrpv(SetIdx{5}, WayIdx{i % 4}) == DrripPolicy::kMaxRrpv;
    }
    EXPECT_GE(distant, 14u);
}

TEST(Drrip, RankAgesLikeSrrip)
{
    DrripPolicy drrip(64, 2);
    drrip.onFill(SetIdx{5}, WayIdx{0});
    drrip.onFill(SetIdx{5}, WayIdx{1});
    drrip.onHit(SetIdx{5}, WayIdx{0});
    const auto order = drrip.rank(SetIdx{5});
    EXPECT_EQ(order.front(), WayIdx{1});
    EXPECT_EQ(drrip.rrpv(SetIdx{5}, WayIdx{1}), DrripPolicy::kMaxRrpv);
}

TEST(Drrip, PreferredVictimsAreMaxRrpv)
{
    DrripPolicy drrip(64, 4);
    for (unsigned w = 0; w < 4; ++w)
        drrip.onFill(SetIdx{5}, WayIdx{w});
    drrip.onHit(SetIdx{5}, WayIdx{3});
    const auto candidates = drrip.preferredVictims(SetIdx{5});
    for (const WayIdx w : candidates)
        EXPECT_EQ(drrip.rrpv(SetIdx{5}, w), DrripPolicy::kMaxRrpv);
    EXPECT_FALSE(candidates.empty());
}

} // namespace
} // namespace bvc
