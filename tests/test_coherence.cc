/**
 * @file
 * Tests for the coherent many-core layer: the MSI/MESI directory
 * (src/coherence/), the per-model coherenceInvalidate snoop path, the
 * banked LLC's content/stats transparency, and the acceptance
 * assertion that Base-Victim's per-core hit rate never drops below the
 * uncompressed baseline under coherence invalidations.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "check/shadow_checker.hh"
#include "coherence/coherence.hh"
#include "compress/factory.hh"
#include "core/banked_llc.hh"
#include "core/base_victim_cache.hh"
#include "core/dcc_cache.hh"
#include "core/two_tag_array.hh"
#include "core/uncompressed_llc.hh"
#include "core/vsc_cache.hh"
#include "sim/system.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

constexpr std::size_t kWays = 8;
constexpr std::size_t kSets = 16;
constexpr std::size_t kBytes = kSets * kWays * kLineBytes;

/** A block address landing in set 0 of the small test geometry. */
Addr
set0Blk(std::uint64_t i)
{
    return static_cast<Addr>(i) * kSets * kLineBytes;
}

// ---------------------------------------------------------------------
// CoherenceDirectory protocol transitions
// ---------------------------------------------------------------------

TEST(CoherenceDirectory, MsiReadersShareThenWriterInvalidates)
{
    CoherenceDirectory dir(CoherenceKind::Msi, 4);
    const Addr blk = 0x1000;

    CoherenceAction a = dir.onRead(CoreId{0}, blk);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.downgrade, 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Shared);

    dir.onRead(CoreId{1}, blk);
    EXPECT_EQ(dir.sharers(blk), 0b011u);

    // Core 2 writes: both readers' copies must drop; writer owns it.
    a = dir.onWrite(CoreId{2}, blk);
    EXPECT_EQ(a.invalidate, 0b011u);
    EXPECT_EQ(a.downgrade, 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Modified);
    EXPECT_EQ(dir.sharers(blk), 0b100u);
    EXPECT_EQ(dir.stats().get("invalidations_sent"), 2u);
}

TEST(CoherenceDirectory, MsiRemoteReadDowngradesModifiedOwner)
{
    CoherenceDirectory dir(CoherenceKind::Msi, 2);
    const Addr blk = 0x2000;

    dir.onWrite(CoreId{0}, blk);
    const CoherenceAction a = dir.onRead(CoreId{1}, blk);
    // The owner's dirty copy must flush but may stay resident Shared.
    EXPECT_EQ(a.downgrade, 0b01u);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Shared);
    EXPECT_EQ(dir.sharers(blk), 0b11u);
    EXPECT_EQ(dir.stats().get("downgrades_sent"), 1u);
}

TEST(CoherenceDirectory, MsiOwnerRereadAndRewriteAreSilent)
{
    CoherenceDirectory dir(CoherenceKind::Msi, 2);
    const Addr blk = 0x3000;

    dir.onWrite(CoreId{0}, blk);
    CoherenceAction a = dir.onRead(CoreId{0}, blk);
    EXPECT_EQ(a.invalidate | a.downgrade, 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Modified);

    a = dir.onWrite(CoreId{0}, blk);
    EXPECT_EQ(a.invalidate | a.downgrade, 0u);
    EXPECT_EQ(dir.stats().get("invalidations_sent"), 0u);
}

TEST(CoherenceDirectory, MsiSharedToModifiedCountsUpgrade)
{
    CoherenceDirectory dir(CoherenceKind::Msi, 2);
    const Addr blk = 0x4000;
    dir.onRead(CoreId{0}, blk);
    dir.onWrite(CoreId{0}, blk); // S -> M with no other sharers
    EXPECT_EQ(dir.stats().get("upgrades"), 1u);
    EXPECT_EQ(dir.stats().get("invalidations_sent"), 0u);
}

TEST(CoherenceDirectory, MesiGrantsExclusiveAndUpgradesSilently)
{
    CoherenceDirectory dir(CoherenceKind::Mesi, 4);
    const Addr blk = 0x5000;

    dir.onRead(CoreId{1}, blk);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Exclusive);
    EXPECT_EQ(dir.stats().get("exclusive_grants"), 1u);

    // The MESI payoff: E -> M by the owner needs no traffic.
    const CoherenceAction a = dir.onWrite(CoreId{1}, blk);
    EXPECT_EQ(a.invalidate | a.downgrade, 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Modified);
    EXPECT_EQ(dir.stats().get("silent_upgrades"), 1u);

    // A second reader ends exclusivity: the owner must flush.
    const CoherenceAction b = dir.onRead(CoreId{2}, blk);
    EXPECT_EQ(b.downgrade, 0b0010u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Shared);
}

TEST(CoherenceDirectory, LlcEvictionReturnsAndForgetsSharers)
{
    CoherenceDirectory dir(CoherenceKind::Msi, 8);
    const Addr blk = 0x6000;
    dir.onRead(CoreId{3}, blk);
    dir.onRead(CoreId{5}, blk);
    EXPECT_EQ(dir.onLlcEviction(blk), (1u << 3) | (1u << 5));
    EXPECT_EQ(dir.sharers(blk), 0u);
    EXPECT_EQ(dir.state(blk), CoherenceDirectory::State::Invalid);
    // A second eviction of a forgotten block is a no-op mask.
    EXPECT_EQ(dir.onLlcEviction(blk), 0u);
}

TEST(CoherenceDirectory, SharersAreStickyAcrossSilentEvictions)
{
    // The directory never learns about silent private evictions: the
    // sharer mask is a superset and only invalidations/evictions clear
    // it. Re-reading after a (simulated) silent drop must not grow the
    // mask beyond the one bit.
    CoherenceDirectory dir(CoherenceKind::Msi, 2);
    const Addr blk = 0x7000;
    dir.onRead(CoreId{0}, blk);
    dir.onRead(CoreId{0}, blk);
    EXPECT_EQ(dir.sharers(blk), 0b01u);
}

TEST(CoherenceDirectoryDeathTest, RejectsBadConfigurations)
{
    EXPECT_DEATH(CoherenceDirectory(CoherenceKind::Msi, 65),
                 "core count must be in");
    EXPECT_DEATH(CoherenceDirectory(CoherenceKind::Msi, 0),
                 "core count must be in");
    EXPECT_DEATH(CoherenceDirectory(CoherenceKind::None, 4),
                 "construct only for MSI/MESI");
    EXPECT_DEATH(
        {
            CoherenceDirectory dir(CoherenceKind::Msi, 2);
            dir.onRead(CoreId{2}, 0x100);
        },
        "core out of range");
}

// ---------------------------------------------------------------------
// coherenceInvalidate across every LLC model
// ---------------------------------------------------------------------

/** Every model behind the common interface, built directly. */
std::vector<std::unique_ptr<Llc>>
allModels(const Compressor &comp)
{
    std::vector<std::unique_ptr<Llc>> out;
    out.push_back(std::make_unique<UncompressedLlc>(
        kBytes, kWays, ReplacementKind::Lru));
    out.push_back(std::make_unique<TwoTagNaiveLlc>(
        kBytes, kWays, ReplacementKind::Lru, comp));
    out.push_back(std::make_unique<TwoTagModifiedLlc>(
        kBytes, kWays, ReplacementKind::Lru, comp));
    out.push_back(std::make_unique<BaseVictimLlc>(
        kBytes, kWays, ReplacementKind::Lru, VictimReplKind::Ecm,
        comp));
    out.push_back(std::make_unique<VscLlc>(kBytes, kWays, comp));
    out.push_back(std::make_unique<DccLlc>(kBytes, kWays, comp));
    return out;
}

TEST(CoherenceInvalidate, RemovesResidentCopyInEveryModel)
{
    const auto comp = makeCompressor("bdi");
    std::uint8_t line[kLineBytes] = {};
    for (auto &llc : allModels(*comp)) {
        const Addr blk = set0Blk(1);
        llc->access(blk, AccessType::Read, line);
        ASSERT_TRUE(llc->probe(blk)) << llc->name();

        const LlcResult r = llc->coherenceInvalidate(blk);
        EXPECT_FALSE(llc->probe(blk)) << llc->name();
        // A clean resident copy leaves without memory traffic but with
        // the inclusion back-invalidation.
        EXPECT_TRUE(r.memWritebacks.empty()) << llc->name();
        ASSERT_EQ(r.backInvalidations.size(), 1u) << llc->name();
        EXPECT_EQ(r.backInvalidations.front(), blk) << llc->name();
        EXPECT_EQ(llc->stats().get("coherence_invalidations"), 1u)
            << llc->name();
    }
}

TEST(CoherenceInvalidate, MissIsANoOpWithEmptyResult)
{
    const auto comp = makeCompressor("bdi");
    std::uint8_t line[kLineBytes] = {};
    for (auto &llc : allModels(*comp)) {
        llc->access(set0Blk(1), AccessType::Read, line);
        const LlcResult r = llc->coherenceInvalidate(set0Blk(2));
        EXPECT_FALSE(r.hit) << llc->name();
        EXPECT_TRUE(r.memWritebacks.empty()) << llc->name();
        EXPECT_TRUE(r.backInvalidations.empty()) << llc->name();
        EXPECT_TRUE(llc->probe(set0Blk(1))) << llc->name();
        EXPECT_EQ(llc->stats().get("coherence_invalidations"), 0u)
            << llc->name();
    }
}

TEST(CoherenceInvalidate, DirtyCopyWritesBackExactlyOnce)
{
    const auto comp = makeCompressor("bdi");
    std::uint8_t line[kLineBytes] = {};
    for (auto &llc : allModels(*comp)) {
        const Addr blk = set0Blk(1);
        llc->access(blk, AccessType::Read, line);
        llc->access(blk, AccessType::Writeback, line); // mark dirty
        const LlcResult r = llc->coherenceInvalidate(blk);
        ASSERT_EQ(r.memWritebacks.size(), 1u) << llc->name();
        EXPECT_EQ(r.memWritebacks.front(), blk) << llc->name();
        EXPECT_FALSE(llc->probe(blk)) << llc->name();
    }
}

TEST(CoherenceInvalidate, DccInvalidatesSubBlockGranularity)
{
    const auto comp = makeCompressor("bdi");
    DccLlc dcc(kBytes, kWays, *comp);
    std::uint8_t line[kLineBytes] = {};
    // Two sub-blocks of one super-block; invalidating one must leave
    // the other resident under the shared tag.
    const Addr sub0 = 0;
    const Addr sub1 = kLineBytes;
    dcc.access(sub0, AccessType::Read, line);
    dcc.access(sub1, AccessType::Read, line);

    dcc.coherenceInvalidate(sub0);
    EXPECT_FALSE(dcc.probe(sub0));
    EXPECT_TRUE(dcc.probe(sub1));

    dcc.coherenceInvalidate(sub1);
    EXPECT_FALSE(dcc.probe(sub1));
    EXPECT_EQ(dcc.validLines(), 0u);
}

// ---------------------------------------------------------------------
// Shadow-checked snoop invalidations (the never-worse argument)
// ---------------------------------------------------------------------

/** Inclusive Base-Victim LLC under the checker; keeps a raw BV view. */
struct CheckedBv
{
    std::unique_ptr<Compressor> comp = makeCompressor("bdi");
    BaseVictimLlc *bv = nullptr;
    std::unique_ptr<ShadowChecker> checker;

    CheckedBv()
    {
        auto inner = std::make_unique<BaseVictimLlc>(
            kBytes, kWays, ReplacementKind::Nru, VictimReplKind::Ecm,
            *comp);
        bv = inner.get();
        checker = std::make_unique<ShadowChecker>(
            std::move(inner), kBytes, kWays, ReplacementKind::Nru);
    }
};

/** Drive `n` pattern-filled accesses through any Llc. */
void
drive(Llc &llc, std::uint64_t n, std::uint64_t seed,
      DataPatternKind kind = DataPatternKind::MixedGood)
{
    const DataPattern pattern(kind, seed);
    Rng rng(seed + 1);
    std::uint8_t line[kLineBytes];
    const std::uint64_t footprint = kSets * kWays * 3;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr blk = rng.range(footprint) * kLineBytes;
        pattern.fillLine(blk, line);
        AccessType type = AccessType::Read;
        const double r = rng.uniform();
        if (r < 0.05)
            type = AccessType::Prefetch;
        else if (r < 0.25 && llc.probeBase(blk))
            type = AccessType::Writeback;
        llc.access(blk, type, line);
    }
}

TEST(CoherenceInvalidate, VictimCopyDropsSilentlyWithMirrorIntact)
{
    // The satellite-3 scenario: a clean line evicted into the Victim
    // Cache and then coherence-invalidated must leave the Baseline
    // mirror untouched — the shadow and the Base-Victim cache both
    // report empty results and the lockstep mirror keeps passing.
    CheckedBv c;
    drive(*c.checker, 2000, 11, DataPatternKind::Zeros);

    Addr victimTag = 0;
    bool found = false;
    for (std::size_t si = 0; si < kSets && !found; ++si) {
        for (const WayIdx w : indexRange<WayIdx>(kWays)) {
            const CacheLine vl = c.bv->victimLineAt(SetIdx{si}, w);
            if (vl.valid) {
                victimTag = vl.tag;
                found = true;
                break;
            }
        }
    }
    ASSERT_TRUE(found) << "no victim line parked after 2000 zero-line "
                          "accesses";

    const std::uint64_t victimInvalsBefore =
        c.checker->stats().get("victim_coherence_invalidations");
    const LlcResult r = c.checker->coherenceInvalidate(victimTag);
    // Victim-only content is invisible to the baseline: no writeback
    // (clean by the inclusive invariant), no back-invalidation (never
    // baseline content), and the mirror check inside the call passed.
    EXPECT_TRUE(r.memWritebacks.empty());
    EXPECT_TRUE(r.backInvalidations.empty());
    EXPECT_FALSE(c.bv->probe(victimTag));
    EXPECT_EQ(c.checker->stats().get("victim_coherence_invalidations"),
              victimInvalsBefore + 1);

    // The stream continues in lockstep with no divergence.
    drive(*c.checker, 1000, 77);
}

TEST(CoherenceInvalidate, SnoopStormKeepsMirrorOverRandomStream)
{
    CheckedBv c;
    const DataPattern pattern(DataPatternKind::MixedGood, 5);
    Rng rng(6);
    std::uint8_t line[kLineBytes];
    const std::uint64_t footprint = kSets * kWays * 3;
    for (std::uint64_t i = 0; i < 8000; ++i) {
        const Addr blk = rng.range(footprint) * kLineBytes;
        if (rng.chance(0.05)) {
            c.checker->coherenceInvalidate(blk);
            continue;
        }
        pattern.fillLine(blk, line);
        AccessType type = AccessType::Read;
        const double r = rng.uniform();
        if (r < 0.05)
            type = AccessType::Prefetch;
        else if (r < 0.25 && c.checker->probeBase(blk))
            type = AccessType::Writeback;
        c.checker->access(blk, type, line);
    }
    EXPECT_GT(c.checker->stats().get("coherence_invalidations"), 0u);
}

TEST(CoherenceInvalidateDeathTest, CatchesMirrorDivergence)
{
    EXPECT_DEATH(
        {
            CheckedBv c;
            std::uint8_t line[kLineBytes] = {};
            c.checker->access(set0Blk(1), AccessType::Read, line);
            // Desynchronize the shadow behind the checker's back; the
            // next checked snoop of that set must die, attributed to
            // the CoherenceInval operation.
            c.checker->shadow().access(set0Blk(2), AccessType::Read,
                                       line);
            c.checker->coherenceInvalidate(set0Blk(1));
        },
        "CoherenceInval");
}

// ---------------------------------------------------------------------
// Banked LLC transparency
// ---------------------------------------------------------------------

void
driveGated(Llc &a, Llc &b, std::uint64_t n, std::uint64_t seed)
{
    const DataPattern pattern(DataPatternKind::MixedGood, seed);
    Rng rng(seed + 1);
    std::uint8_t line[kLineBytes];
    // Footprint spans all banks of the bench-sized cache (512 sets).
    const std::uint64_t footprint = 512 * 16 * 2;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr blk = rng.range(footprint) * kLineBytes;
        pattern.fillLine(blk, line);
        AccessType type = AccessType::Read;
        const double r = rng.uniform();
        const bool residentA = a.probeBase(blk);
        ASSERT_EQ(residentA, b.probeBase(blk))
            << "banked/unbanked contents diverged at access " << i;
        if (r < 0.05)
            type = AccessType::Prefetch;
        else if (r < 0.25 && residentA)
            type = AccessType::Writeback;
        else if (rng.chance(0.02)) {
            a.coherenceInvalidate(blk);
            b.coherenceInvalidate(blk);
            continue;
        }
        a.access(blk, type, line);
        b.access(blk, type, line);
    }
}

TEST(BankedLlc, BankingIsContentAndStatsTransparent)
{
    // Bank bits sit immediately above each bank's set bits, so banking
    // partitions the unbanked sets exactly: identical streams must
    // leave identical contents and identical aggregate counters.
    for (const LlcArch arch :
         {LlcArch::Uncompressed, LlcArch::BaseVictim, LlcArch::Dcc}) {
        SystemConfig mono = SystemConfig::benchDefaults();
        mono.arch = arch;
        SystemConfig banked = mono;
        banked.llcBanks = 4;

        const auto comp = makeCompressor(mono.compressor);
        const auto a = makeLlc(mono, *comp);
        const auto b = makeLlc(banked, *comp);
        driveGated(*a, *b, 20000, 17);

        EXPECT_EQ(a->validLines(), b->validLines())
            << llcArchName(arch);
        EXPECT_EQ(a->name(), b->name());
        for (const std::string &n : a->stats().names())
            EXPECT_EQ(a->stats().get(n), b->stats().get(n))
                << llcArchName(arch) << " counter " << n;
    }
}

TEST(BankedLlc, AccessesSpreadAcrossBanks)
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.arch = LlcArch::BaseVictim;
    cfg.llcBanks = 8;
    const auto comp = makeCompressor(cfg.compressor);
    const auto llc = makeLlc(cfg, *comp);
    auto *bankedLlc = dynamic_cast<BankedLlc *>(llc.get());
    ASSERT_NE(bankedLlc, nullptr);
    EXPECT_EQ(bankedLlc->numBanks(), 8u);

    drive(*llc, 4000, 23);
    std::size_t busyBanks = 0;
    for (std::size_t i = 0; i < bankedLlc->numBanks(); ++i)
        busyBanks +=
            bankedLlc->bank(i).stats().get("accesses") > 0 ? 1 : 0;
    // The random footprint is far larger than one bank's reach.
    EXPECT_GE(busyBanks, 2u);
}

TEST(BankedLlcDeathTest, RejectsNonPowerOfTwoBankCounts)
{
    SystemConfig cfg = SystemConfig::benchDefaults();
    cfg.llcBanks = 3;
    const auto comp = makeCompressor(cfg.compressor);
    EXPECT_DEATH(makeLlc(cfg, *comp), "power of two");
}

// ---------------------------------------------------------------------
// Acceptance: per-core hit rate never-worse under invalidations
// ---------------------------------------------------------------------

TEST(CoherenceNeverWorse, PerCoreHitRateAtSixteenCores)
{
    // Dual-drive an inclusive Base-Victim LLC and the uncompressed
    // baseline with one identical 16-core access stream, including
    // coherence invalidations, and assert the paper's guarantee per
    // core: every core's demand hits in Base-Victim are at least its
    // hits in the baseline (hit-superset holds access by access, so it
    // holds under any attribution).
    constexpr std::size_t kCores = 16;
    const auto comp = makeCompressor("bdi");
    BaseVictimLlc bv(kBytes, kWays, ReplacementKind::Nru,
                     VictimReplKind::Ecm, *comp);
    UncompressedLlc unc(kBytes, kWays, ReplacementKind::Nru);

    const DataPattern pattern(DataPatternKind::MixedGood, 99);
    Rng rng(0xC0FFEE);
    std::uint8_t line[kLineBytes];
    const std::uint64_t footprint = kSets * kWays * 3;
    std::array<std::uint64_t, kCores> hitsBv{};
    std::array<std::uint64_t, kCores> hitsUnc{};
    std::array<std::uint64_t, kCores> demands{};

    for (std::uint64_t i = 0; i < 60000; ++i) {
        const std::size_t core = rng.range(kCores);
        // Shared region plus a per-core-biased region: cores overlap
        // but favor their own lines, like a coherent shared heap.
        Addr blk = rng.range(footprint) * kLineBytes;
        if (rng.chance(0.5))
            blk = ((core * footprint) / kCores + rng.range(footprint / kCores)) * kLineBytes;

        if (rng.chance(0.03)) {
            // External snoop: identical in both caches.
            bv.coherenceInvalidate(blk);
            unc.coherenceInvalidate(blk);
            continue;
        }

        pattern.fillLine(blk, line);
        const bool resident = unc.probe(blk);
        ASSERT_EQ(resident, bv.probeBase(blk)) << "mirror diverged";
        AccessType type = AccessType::Read;
        const double r = rng.uniform();
        if (r < 0.05)
            type = AccessType::Prefetch;
        else if (r < 0.25 && resident)
            type = AccessType::Writeback;

        const bool bvHit = bv.access(blk, type, line).hit;
        const bool uncHit = unc.access(blk, type, line).hit;
        if (type == AccessType::Read) {
            ++demands[core];
            hitsBv[core] += bvHit ? 1 : 0;
            hitsUnc[core] += uncHit ? 1 : 0;
            // Hit superset per access: a baseline hit implies a
            // Base-Victim hit even under the invalidation stream.
            ASSERT_TRUE(bvHit || !uncHit)
                << "never-worse violated at access " << i;
        }
    }

    ASSERT_GT(bv.stats().get("coherence_invalidations"), 0u);
    bool someCoreGained = false;
    for (std::size_t c = 0; c < kCores; ++c) {
        ASSERT_GT(demands[c], 0u);
        EXPECT_GE(hitsBv[c], hitsUnc[c]) << "core " << c;
        someCoreGained = someCoreGained || hitsBv[c] > hitsUnc[c];
    }
    // The Victim Cache must have produced opportunistic wins somewhere
    // (or the compression layer did nothing all run).
    EXPECT_TRUE(someCoreGained);
}

} // namespace
} // namespace bvc
