/** @file Unit tests for the BDI codec (the paper's LLC compressor). */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "compress/bdi.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

Line
lineOf64(const std::uint64_t (&words)[8])
{
    Line line{};
    for (unsigned i = 0; i < 8; ++i)
        std::memcpy(line.data() + 8 * i, &words[i], 8);
    return line;
}

Line
roundTrip(const BdiCompressor &bdi, const Line &in)
{
    const CompressedBlock block = bdi.compress(in.data());
    Line out{};
    bdi.decompress(block, out.data());
    return out;
}

TEST(Bdi, ZeroLineUsesZerosEncoding)
{
    BdiCompressor bdi;
    Line line{};
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::Zeros);
    EXPECT_EQ(block.sizeBytes(), 1u);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, RepeatedValueUsesRep8)
{
    BdiCompressor bdi;
    const std::uint64_t v = 0xdeadbeefcafef00dULL;
    Line line = lineOf64({v, v, v, v, v, v, v, v});
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::Rep8);
    EXPECT_EQ(block.sizeBytes(), 8u);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, SmallIntsUseB8D1)
{
    BdiCompressor bdi;
    Line line = lineOf64({1, 5, 17, 100, 3, 0, 90, 7});
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::B8D1);
    EXPECT_EQ(block.sizeBytes(),
              BdiCompressor::encodedBytes(BdiCompressor::B8D1));
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, PointersUseBase8WithImmediates)
{
    BdiCompressor bdi;
    // Values near one 64-bit base plus small values near zero: the
    // base-delta-IMMEDIATE part of BDI.
    const std::uint64_t base = 0x00007f8812340000ULL;
    Line line = lineOf64({base + 1, 4, base + 100, 0,
                          base + 77, 3, base + 120, 1});
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::B8D1);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, WideDeltasFallToB8D4)
{
    BdiCompressor bdi;
    const std::uint64_t base = 0x00007f0000000000ULL;
    Line line = lineOf64({base + 0x100000, base + 0x7fffffff, base,
                          base + 0x20000000, base + 5, base + 0xabcdef,
                          base + 0x3000000, base + 42});
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::B8D4);
    EXPECT_EQ(block.sizeBytes(), 41u);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, Narrow32BitDataUsesBase4)
{
    BdiCompressor bdi;
    Line line{};
    const std::uint32_t base = 0x40000000u;
    for (unsigned i = 0; i < 16; ++i) {
        const std::uint32_t v = base + i * 3;
        std::memcpy(line.data() + 4 * i, &v, 4);
    }
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::B4D1);
    EXPECT_EQ(block.sizeBytes(),
              BdiCompressor::encodedBytes(BdiCompressor::B4D1));
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, RandomDataStaysUncompressed)
{
    BdiCompressor bdi;
    Rng rng(99);
    Line line{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = rng.next();
        std::memcpy(line.data() + 8 * i, &v, 8);
    }
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::Uncompressed);
    EXPECT_EQ(block.sizeBytes(), kLineBytes);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, PicksSmallestApplicableEncoding)
{
    BdiCompressor bdi;
    // Qualifies for B8D2 (17+... = 25B) and B8D4 (41B); must pick B8D2.
    Line line = lineOf64({1000, 2000, 3000, 1500, 1200, 900, 2500, 1800});
    const CompressedBlock block = bdi.compress(line.data());
    EXPECT_EQ(block.encoding, BdiCompressor::B8D2);
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, DeltaWraparoundRoundTrips)
{
    BdiCompressor bdi;
    // Deltas that are negative relative to the base.
    const std::uint64_t base = 0x00007fff00000080ULL;
    Line line = lineOf64({base, base - 100, base - 5, base - 128,
                          base + 127, base - 1, base + 5, base - 50});
    EXPECT_EQ(roundTrip(bdi, line), line);
}

TEST(Bdi, CompressedSizeNeverExceedsLine)
{
    BdiCompressor bdi;
    Rng rng(7);
    Line line{};
    for (int trial = 0; trial < 200; ++trial) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(rng.range(256));
        EXPECT_LE(bdi.compress(line.data()).sizeBytes(), kLineBytes);
        EXPECT_EQ(roundTrip(bdi, line), line);
    }
}

TEST(Bdi, SegmentsQuantizedToFourByteBoundaries)
{
    EXPECT_EQ(bytesToSegments(0), 0u);
    EXPECT_EQ(bytesToSegments(1), 1u);
    EXPECT_EQ(bytesToSegments(4), 1u);
    EXPECT_EQ(bytesToSegments(5), 2u);
    EXPECT_EQ(bytesToSegments(17), 5u);
    EXPECT_EQ(bytesToSegments(64), 16u);
    // Sizes past one line violate the compressor contract: clamping
    // would silently record an over-full line as fitting.
    EXPECT_DEATH((void)bytesToSegments(65), "exceeds one line");
    EXPECT_DEATH((void)bytesToSegments(100), "exceeds one line");
}

TEST(Bdi, DecompressionLatencyRules)
{
    BdiCompressor bdi;
    // Zero and uncompressed lines skip the decompressor (Section V).
    EXPECT_EQ(bdi.decompressionCycles(0), 0u);
    EXPECT_EQ(bdi.decompressionCycles(kSegmentsPerLine), 0u);
    EXPECT_EQ(bdi.decompressionCycles(5), 2u);
    EXPECT_EQ(bdi.decompressionCycles(11), 2u);
}

TEST(Bdi, EncodedBytesTable)
{
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::Zeros), 1u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::Rep8), 8u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B8D1), 17u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B8D2), 25u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B8D4), 41u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B4D1), 22u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B4D2), 38u);
    EXPECT_EQ(BdiCompressor::encodedBytes(BdiCompressor::B2D1), 38u);
}

} // namespace
} // namespace bvc
