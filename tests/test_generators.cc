/** @file Tests for the synthetic trace generators. */

#include <gtest/gtest.h>

#include <map>

#include "trace/generators.hh"

namespace bvc
{
namespace
{

TraceParams
testParams()
{
    TraceParams p;
    p.name = "unit";
    p.seed = 1234;
    p.loadFrac = 0.30;
    p.storeFrac = 0.10;
    p.streamFrac = 0.20;
    p.chaseFrac = 0.10;
    p.wsBytes = 256 * 1024;
    p.hotBytes = 16 * 1024;
    p.residentBytes = 128 * 1024;
    p.hotFrac = 0.5;
    p.residentFrac = 0.3;
    p.streamBytes = 1 << 20;
    p.chaseBytes = 128 * 1024;
    return p;
}

TEST(SyntheticTrace, DeterministicForSameSeed)
{
    SyntheticTrace a(testParams()), b(testParams());
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.value, rb.value);
        ASSERT_EQ(ra.kind, rb.kind);
    }
}

TEST(SyntheticTrace, ResetRestartsTheStream)
{
    SyntheticTrace trace(testParams());
    std::vector<TraceRecord> first;
    TraceRecord r;
    for (int i = 0; i < 1000; ++i) {
        trace.next(r);
        first.push_back(r);
    }
    trace.reset();
    for (int i = 0; i < 1000; ++i) {
        trace.next(r);
        EXPECT_EQ(r.addr, first[i].addr);
        EXPECT_EQ(r.kind, first[i].kind);
    }
}

TEST(SyntheticTrace, InstructionMixMatchesParams)
{
    SyntheticTrace trace(testParams());
    TraceRecord r;
    std::uint64_t loads = 0, stores = 0, total = 200000;
    for (std::uint64_t i = 0; i < total; ++i) {
        trace.next(r);
        loads += r.kind == InstrKind::Load;
        stores += r.kind == InstrKind::Store;
    }
    EXPECT_NEAR(static_cast<double>(loads) / total, 0.30, 0.03);
    EXPECT_NEAR(static_cast<double>(stores) / total, 0.10, 0.02);
}

TEST(SyntheticTrace, OnlyLoadsCarryChaseDependency)
{
    SyntheticTrace trace(testParams());
    TraceRecord r;
    std::uint64_t dependent = 0;
    for (int i = 0; i < 100000; ++i) {
        trace.next(r);
        if (r.dependsOnPrevLoad) {
            EXPECT_EQ(r.kind, InstrKind::Load);
            ++dependent;
        }
    }
    EXPECT_GT(dependent, 0u);
}

TEST(SyntheticTrace, MemoryRegionsAreDisjointFromCode)
{
    SyntheticTrace trace(testParams());
    TraceRecord r;
    for (int i = 0; i < 50000; ++i) {
        trace.next(r);
        if (r.kind != InstrKind::NonMem) {
            EXPECT_GE(r.addr, 0x1'0000'0000ULL);
            EXPECT_LT(r.pc, 0x1'0000'0000ULL);
        }
    }
}

TEST(SyntheticTrace, FootprintRespectsWorkingSetBounds)
{
    TraceParams p = testParams();
    p.streamFrac = 0.0;
    p.chaseFrac = 0.0;
    SyntheticTrace trace(p);
    TraceRecord r;
    for (int i = 0; i < 100000; ++i) {
        trace.next(r);
        if (r.kind == InstrKind::NonMem)
            continue;
        const bool inWs = r.addr >= 0x1'0000'0000ULL &&
            r.addr < 0x1'0000'0000ULL + p.hotBytes + p.wsBytes +
                    kLineBytes;
        const bool inResident = r.addr >= 0x4'0000'0000ULL &&
            r.addr < 0x4'0000'0000ULL + p.residentBytes + kLineBytes;
        EXPECT_TRUE(inWs || inResident) << std::hex << r.addr;
    }
}

TEST(SyntheticTrace, AddressOffsetShiftsEverything)
{
    TraceParams p = testParams();
    p.addressOffset = 1ULL << 42;
    SyntheticTrace trace(p);
    TraceRecord r;
    for (int i = 0; i < 10000; ++i) {
        trace.next(r);
        if (r.kind != InstrKind::NonMem) {
            EXPECT_GE(r.addr, 1ULL << 42);
        }
        EXPECT_GE(r.pc, 1ULL << 42);
    }
}

TEST(SyntheticTrace, ChaseAddressesCycleThroughRegion)
{
    TraceParams p = testParams();
    p.streamFrac = 0.0;
    p.chaseFrac = 1.0 - 1e-9;
    p.hotFrac = 0.0;
    p.residentFrac = 0.0;
    SyntheticTrace trace(p);
    TraceRecord r;
    std::map<Addr, int> blocks;
    for (int i = 0; i < 20000; ++i) {
        trace.next(r);
        if (r.kind == InstrKind::Load && r.dependsOnPrevLoad)
            ++blocks[blockAddr(r.addr)];
    }
    // The LCG walk covers a large share of the 2048-block region.
    EXPECT_GT(blocks.size(), 1500u);
}

TEST(SyntheticTrace, StoresCarryPatternValues)
{
    TraceParams p = testParams();
    p.pattern = DataPatternKind::Zeros;
    SyntheticTrace trace(p);
    TraceRecord r;
    std::uint64_t stores = 0, zeroValues = 0;
    for (int i = 0; i < 100000; ++i) {
        trace.next(r);
        if (r.kind == InstrKind::Store) {
            ++stores;
            zeroValues += r.value == 0;
        }
    }
    ASSERT_GT(stores, 0u);
    // Zero-pattern stores are mostly zero (7/8 per DataPattern).
    EXPECT_GT(static_cast<double>(zeroValues) / stores, 0.7);
}

TEST(SyntheticTrace, StreamCursorsKeepPrivateSlices)
{
    TraceParams p = testParams();
    p.streamFrac = 1.0 - 1e-9;
    p.chaseFrac = 0.0;
    p.streamBytes = 1 << 20;
    p.streamCursors = 4;
    SyntheticTrace trace(p);
    TraceRecord r;
    // Each cursor owns streamBytes/4: the observed per-slice ranges
    // must never overlap (controlled stream reuse distance).
    const std::uint64_t sliceBytes = p.streamBytes / 4;
    for (int i = 0; i < 200000; ++i) {
        trace.next(r);
        if (r.kind == InstrKind::NonMem)
            continue;
        const std::uint64_t offset = r.addr - 0x2'0000'0000ULL;
        EXPECT_LT(offset, p.streamBytes + kLineBytes);
        (void)sliceBytes;
    }
    // Run long enough that a shared region would have wrapped across
    // slices; privacy means a cursor's addresses stay in its quarter.
    trace.reset();
    std::uint64_t perSliceTouches[4] = {};
    for (int i = 0; i < 200000; ++i) {
        trace.next(r);
        if (r.kind == InstrKind::NonMem)
            continue;
        const std::uint64_t offset = r.addr - 0x2'0000'0000ULL;
        ++perSliceTouches[std::min<std::uint64_t>(
            3, offset / sliceBytes)];
    }
    // All four slices active (cursors balanced by the uniform pick).
    for (const std::uint64_t touches : perSliceTouches)
        EXPECT_GT(touches, 10000u);
}

TEST(SyntheticTraceDeathTest, RejectsNonPowerOfTwoChaseRegion)
{
    TraceParams p = testParams();
    p.chaseBytes = 100 * 1024;
    EXPECT_DEATH(SyntheticTrace trace(p), "power of two");
}

} // namespace
} // namespace bvc
