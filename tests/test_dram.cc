/** @file Unit tests for the DDR3 timing model. */

#include <gtest/gtest.h>

#include "memory/dram.hh"

namespace bvc
{
namespace
{

TEST(Dram, ChannelInterleavesOnLines)
{
    Dram dram;
    EXPECT_NE(dram.channelOf(0), dram.channelOf(kLineBytes));
    EXPECT_EQ(dram.channelOf(0), dram.channelOf(2 * kLineBytes));
}

TEST(Dram, SequentialLinesShareARowPerChannel)
{
    Dram dram;
    // Lines 0 and 2 are on channel 0; the default 16KB column span
    // keeps them in the same bank and row.
    EXPECT_EQ(dram.bankOf(0), dram.bankOf(2 * kLineBytes));
    EXPECT_EQ(dram.rowOf(0), dram.rowOf(2 * kLineBytes));
}

TEST(Dram, DistantAddressesChangeRow)
{
    Dram dram;
    EXPECT_NE(dram.rowOf(0), dram.rowOf(1ULL << 30));
}

TEST(Dram, FirstAccessPaysActivatePlusCas)
{
    DramTiming timing; // 15-15-15-34 x5
    Dram dram(timing);
    const Cycle done = dram.read(0, 1000);
    // tRCD + tCL + tBURST = (15 + 15 + 4) * 5 = 170.
    EXPECT_EQ(done, 1000 + 170);
    EXPECT_EQ(dram.stats().get("row_closed"), 1u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    Dram dram;
    (void)dram.read(0, 0);
    // Re-read the same row much later (no queueing).
    const Cycle hitStart = 100000;
    const Cycle hitDone = dram.read(2 * kLineBytes, hitStart);
    // tCL + tBURST = (15 + 4) * 5 = 95.
    EXPECT_EQ(hitDone - hitStart, 95u);
    EXPECT_EQ(dram.stats().get("row_hits"), 1u);
}

TEST(Dram, RowConflictPaysPrechargeAndRespectsTras)
{
    Dram dram;
    (void)dram.read(0, 0);
    // Same channel + bank, different row: conflict.
    const Addr conflicting = 1ULL << 30;
    ASSERT_EQ(dram.channelOf(0), dram.channelOf(conflicting));
    ASSERT_EQ(dram.bankOf(0), dram.bankOf(conflicting));
    const Cycle done = dram.read(conflicting, 100000);
    // tRP + tRCD + tCL + tBURST = (15+15+15+4)*5 = 245.
    EXPECT_EQ(done - 100000, 245u);
    EXPECT_EQ(dram.stats().get("row_conflicts"), 1u);
}

TEST(Dram, BackToBackSameBankSerializes)
{
    Dram dram;
    const Cycle first = dram.read(0, 0);
    // Immediate second access to the same bank must wait.
    const Cycle second = dram.read(2 * kLineBytes, 1);
    EXPECT_GE(second, first + 95);
}

TEST(Dram, DifferentBanksOverlap)
{
    Dram dram;
    // Find two addresses on the same channel but different banks.
    const Addr a = 0;
    Addr b = 2 * kLineBytes;
    while (dram.bankOf(b) == dram.bankOf(a) ||
           dram.channelOf(b) != dram.channelOf(a)) {
        b += 2 * kLineBytes;
    }
    const Cycle da = dram.read(a, 0);
    const Cycle db = dram.read(b, 0);
    // Bank-parallel: only the shared data bus serializes the bursts.
    EXPECT_LT(db, da + 170);
}

TEST(Dram, BusSerializesBursts)
{
    Dram dram;
    Addr a = 0, b = 2 * kLineBytes;
    while (dram.bankOf(b) == dram.bankOf(a) ||
           dram.channelOf(b) != dram.channelOf(a)) {
        b += 2 * kLineBytes;
    }
    const Cycle da = dram.read(a, 0);
    const Cycle db = dram.read(b, 0);
    // The two bursts cannot finish closer than one burst apart.
    EXPECT_GE(db > da ? db - da : da - db, 20u);
}

TEST(Dram, ChannelsAreIndependent)
{
    Dram dram;
    const Cycle c0 = dram.read(0, 0);
    const Cycle c1 = dram.read(kLineBytes, 0); // other channel
    EXPECT_EQ(c0, c1); // identical timing, no interference
}

TEST(Dram, WritesOccupyBanks)
{
    Dram dram;
    dram.write(0, 0);
    EXPECT_EQ(dram.stats().get("writes"), 1u);
    // A demand read right behind the write waits for the bank.
    const Cycle done = dram.read(2 * kLineBytes, 1);
    EXPECT_GT(done, 171u);
}

TEST(Dram, PrefetchReadsDoNotBlockDemands)
{
    Dram dram;
    (void)dram.read(0, 0);
    dram.prefetchRead(1ULL << 30, 10); // conflicting row, same bank
    EXPECT_EQ(dram.stats().get("prefetch_reads"), 1u);
    EXPECT_EQ(dram.stats().get("reads"), 2u);
    // The prefetch updated the open row but added no bank occupancy:
    // a demand to the prefetched row gets a row hit at normal cost.
    const Cycle done = dram.read((1ULL << 30) + 2 * kLineBytes, 100000);
    EXPECT_EQ(done - 100000, 95u);
}

TEST(Dram, CompletionNeverBeforeRequest)
{
    Dram dram;
    for (Addr blk = 0; blk < 100 * kLineBytes; blk += kLineBytes)
        EXPECT_GT(dram.read(blk, 500), 500u);
}

} // namespace
} // namespace bvc
