/** @file Tests reproducing the Section IV.C area-overhead arithmetic. */

#include <gtest/gtest.h>

#include "core/area_model.hh"

namespace bvc
{
namespace
{

TEST(AreaModel, PaperConfigurationMatchesSectionIVC)
{
    const AreaBreakdown area = computeAreaOverhead(AreaParams{});
    // 2MB 16-way, 48-bit addresses: 11 index + 6 offset -> 31-bit tag.
    EXPECT_EQ(area.tagBits, 31u);
    // 31 tag + 8 metadata + 512 data bits per way.
    EXPECT_EQ(area.baselineBitsPerWay, 551u);
    // Extra tag (31) + 2 x 4-bit size + 1 valid = 40 bits.
    EXPECT_EQ(area.addedBitsPerWay, 40u);
    // "The area overhead for this is 40b/(39b+512b) = 7.3%".
    EXPECT_NEAR(area.tagArrayOverhead, 0.073, 0.001);
    // "+1.2% logic ... overall area overhead is 8.5%".
    EXPECT_NEAR(area.totalOverhead, 0.085, 0.001);
}

TEST(AreaModel, LargerCachesHaveFewerTagBits)
{
    AreaParams params;
    params.cacheBytes = 8 * 1024 * 1024;
    const AreaBreakdown area = computeAreaOverhead(params);
    EXPECT_EQ(area.tagBits, 29u);
    EXPECT_LT(area.totalOverhead, 0.085);
}

TEST(AreaModel, OverheadScalesWithTagWidth)
{
    AreaParams wide;
    wide.addressBits = 56;
    const AreaBreakdown wider = computeAreaOverhead(wide);
    const AreaBreakdown base = computeAreaOverhead(AreaParams{});
    EXPECT_GT(wider.totalOverhead, base.totalOverhead);
}

TEST(AreaModel, EightByteSegmentsNeedFewerSizeBits)
{
    AreaParams params;
    params.sizeFieldBits = 3; // 8B segments -> 8 sizes
    const AreaBreakdown area = computeAreaOverhead(params);
    EXPECT_EQ(area.addedBitsPerWay, 31u + 6u + 1u);
    EXPECT_LT(area.tagArrayOverhead,
              computeAreaOverhead(AreaParams{}).tagArrayOverhead);
}

TEST(AreaModelDeathTest, RejectsNonPowerOfTwoGeometry)
{
    AreaParams params;
    params.cacheBytes = 3 * 1024 * 1024;
    EXPECT_DEATH(computeAreaOverhead(params), "power of two");
}

} // namespace
} // namespace bvc
