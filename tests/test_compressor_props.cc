/**
 * @file
 * Property tests over every compression algorithm: exact round-trip,
 * bounded size, and the zero-line special case — the invariants the
 * compressed cache models rely on, for all codecs (DESIGN.md §5).
 */

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstring>

#include "compress/factory.hh"
#include "core/base_victim_cache.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

class CompressorProperty
    : public ::testing::TestWithParam<CompressorKind>
{
  protected:
    std::unique_ptr<Compressor> comp_ = makeCompressor(GetParam());
};

TEST_P(CompressorProperty, RoundTripsRandomData)
{
    Rng rng(2024);
    Line line{}, out{};
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(rng.range(256));
        const CompressedBlock block = comp_->compress(line.data());
        comp_->decompress(block, out.data());
        ASSERT_EQ(line, out) << comp_->name() << " trial " << trial;
    }
}

TEST_P(CompressorProperty, RoundTripsAllDataPatterns)
{
    const DataPatternKind kinds[] = {
        DataPatternKind::Zeros,      DataPatternKind::SmallInts,
        DataPatternKind::PointerHeap, DataPatternKind::NarrowInts,
        DataPatternKind::Floats,     DataPatternKind::Random,
        DataPatternKind::MixedGood,  DataPatternKind::MixedPoor,
    };
    Line line{}, out{};
    for (const auto kind : kinds) {
        const DataPattern pattern(kind, 77);
        for (Addr blk = 0; blk < 200 * kLineBytes; blk += kLineBytes) {
            pattern.fillLine(blk, line.data());
            const CompressedBlock block = comp_->compress(line.data());
            comp_->decompress(block, out.data());
            ASSERT_EQ(line, out)
                << comp_->name() << " on "
                << DataPattern::kindName(kind);
        }
    }
}

TEST_P(CompressorProperty, NeverExpandsBeyondLineSize)
{
    Rng rng(31337);
    Line line{};
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(rng.range(256));
        EXPECT_LE(comp_->compress(line.data()).sizeBytes(), kLineBytes);
    }
}

TEST_P(CompressorProperty, ZeroLineIsMaximallyCompressible)
{
    Line line{};
    const CompressedBlock block = comp_->compress(line.data());
    // Worst case among the codecs is SC2-lite: 64 x its 1-bit zero
    // code = 8 bytes; everything else is 4 bytes or less.
    EXPECT_LE(block.sizeBytes(), 8u) << comp_->name();
    Line out{};
    out.fill(0xAA);
    comp_->decompress(block, out.data());
    EXPECT_EQ(out, line);
}

TEST_P(CompressorProperty, CompressedSegmentsConsistentWithBytes)
{
    Rng rng(404);
    Line line{};
    for (int trial = 0; trial < 100; ++trial) {
        for (auto &byte : line)
            byte = rng.chance(0.5)
                ? 0
                : static_cast<std::uint8_t>(rng.range(256));
        const unsigned segs = comp_->compressedSegments(line.data());
        const std::size_t bytes = comp_->compress(line.data()).sizeBytes();
        EXPECT_EQ(segs, bytesToSegments(bytes));
        EXPECT_LE(segs, kSegmentsPerLine);
    }
}

// The size-only fast path must agree with the encode path on every
// input: the cache models trust compressedBytes() to predict exactly
// what compress() would have produced (docs/compression.md).
TEST_P(CompressorProperty, SizeOnlyPathMatchesEncodePath)
{
    const DataPatternKind kinds[] = {
        DataPatternKind::Zeros,      DataPatternKind::SmallInts,
        DataPatternKind::PointerHeap, DataPatternKind::NarrowInts,
        DataPatternKind::Floats,     DataPatternKind::Random,
        DataPatternKind::MixedGood,  DataPatternKind::MixedPoor,
    };
    Line line{};
    for (const auto kind : kinds) {
        const DataPattern pattern(kind, 919);
        for (Addr blk = 0; blk < 200 * kLineBytes; blk += kLineBytes) {
            pattern.fillLine(blk, line.data());
            ASSERT_EQ(comp_->compressedBytes(line.data()),
                      comp_->compress(line.data()).sizeBytes())
                << comp_->name() << " on "
                << DataPattern::kindName(kind) << " blk " << blk;
        }
    }
    Rng rng(7777);
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &byte : line)
            byte = rng.chance(0.5)
                ? 0
                : static_cast<std::uint8_t>(rng.range(256));
        ASSERT_EQ(comp_->compressedBytes(line.data()),
                  comp_->compress(line.data()).sizeBytes())
            << comp_->name() << " trial " << trial;
    }
}

// Randomized Base-Victim workout: a stream of conflicting reads and
// writebacks with shifting data patterns must keep every structural
// invariant (pair-fit, no duplicates, victim cleanliness) intact no
// matter which codec supplies the sizes.
TEST_P(CompressorProperty, BaseVictimInvariantsHoldUnderFuzz)
{
    // 8KB, 4 physical ways -> 32 sets; a 64-line address pool spanning
    // two sets keeps the sets under constant replacement pressure.
    BaseVictimLlc llc(8 * 1024, 4, ReplacementKind::Lru,
                      VictimReplKind::Ecm, *comp_);
    const DataPatternKind kinds[] = {
        DataPatternKind::Zeros,     DataPatternKind::SmallInts,
        DataPatternKind::Random,    DataPatternKind::MixedGood,
        DataPatternKind::MixedPoor,
    };
    Rng rng(GetParam() == CompressorKind::Bdi ? 1 : 2);
    Line line{};
    for (int step = 0; step < 2000; ++step) {
        const Addr blk =
            0x40000 + rng.range(64) * (llc.numSets() / 2) * kLineBytes;
        const DataPattern pattern(kinds[step % 5],
                                  static_cast<unsigned>(step / 5));
        pattern.fillLine(blk, line.data());
        // Writebacks must respect inclusion: only lines the baseline
        // cache holds can be dirtied by the upper levels.
        const bool writeback = rng.chance(0.3) && llc.probeBase(blk);
        llc.access(blk,
                   writeback ? AccessType::Writeback : AccessType::Read,
                   line.data());
        ASSERT_TRUE(llc.checkInvariants())
            << comp_->name() << " step " << step;
    }
}

TEST_P(CompressorProperty, DeterministicAcrossCalls)
{
    Rng rng(55);
    Line line{};
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.range(256));
    const CompressedBlock a = comp_->compress(line.data());
    const CompressedBlock b = comp_->compress(line.data());
    EXPECT_EQ(a.encoding, b.encoding);
    EXPECT_EQ(a.payload, b.payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CompressorProperty,
    ::testing::ValuesIn(allCompressorKinds()),
    [](const ::testing::TestParamInfo<CompressorKind> &info) {
        std::string name = makeCompressor(info.param)->name();
        std::string clean;
        for (const char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean += c;
        return clean;
    });

TEST(CompressorFactory, ByNameMatchesByKind)
{
    EXPECT_EQ(makeCompressor("bdi")->name(), "BDI");
    EXPECT_EQ(makeCompressor("fpc")->name(), "FPC");
    EXPECT_EQ(makeCompressor("cpack")->name(), "C-Pack");
    EXPECT_EQ(makeCompressor("zero")->name(), "Zero");
}

TEST(CompressorFactoryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeCompressor("lz4"), ::testing::ExitedWithCode(1),
                "unknown compressor");
}

} // namespace
} // namespace bvc
