/**
 * @file
 * Property tests over every compression algorithm: exact round-trip,
 * bounded size, and the zero-line special case — the invariants the
 * compressed cache models rely on, for all codecs (DESIGN.md §5).
 */

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstring>

#include "compress/factory.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

class CompressorProperty
    : public ::testing::TestWithParam<CompressorKind>
{
  protected:
    std::unique_ptr<Compressor> comp_ = makeCompressor(GetParam());
};

TEST_P(CompressorProperty, RoundTripsRandomData)
{
    Rng rng(2024);
    Line line{}, out{};
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(rng.range(256));
        const CompressedBlock block = comp_->compress(line.data());
        comp_->decompress(block, out.data());
        ASSERT_EQ(line, out) << comp_->name() << " trial " << trial;
    }
}

TEST_P(CompressorProperty, RoundTripsAllDataPatterns)
{
    const DataPatternKind kinds[] = {
        DataPatternKind::Zeros,      DataPatternKind::SmallInts,
        DataPatternKind::PointerHeap, DataPatternKind::NarrowInts,
        DataPatternKind::Floats,     DataPatternKind::Random,
        DataPatternKind::MixedGood,  DataPatternKind::MixedPoor,
    };
    Line line{}, out{};
    for (const auto kind : kinds) {
        const DataPattern pattern(kind, 77);
        for (Addr blk = 0; blk < 200 * kLineBytes; blk += kLineBytes) {
            pattern.fillLine(blk, line.data());
            const CompressedBlock block = comp_->compress(line.data());
            comp_->decompress(block, out.data());
            ASSERT_EQ(line, out)
                << comp_->name() << " on "
                << DataPattern::kindName(kind);
        }
    }
}

TEST_P(CompressorProperty, NeverExpandsBeyondLineSize)
{
    Rng rng(31337);
    Line line{};
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(rng.range(256));
        EXPECT_LE(comp_->compress(line.data()).sizeBytes(), kLineBytes);
    }
}

TEST_P(CompressorProperty, ZeroLineIsMaximallyCompressible)
{
    Line line{};
    const CompressedBlock block = comp_->compress(line.data());
    // Worst case among the codecs is SC2-lite: 64 x its 1-bit zero
    // code = 8 bytes; everything else is 4 bytes or less.
    EXPECT_LE(block.sizeBytes(), 8u) << comp_->name();
    Line out{};
    out.fill(0xAA);
    comp_->decompress(block, out.data());
    EXPECT_EQ(out, line);
}

TEST_P(CompressorProperty, CompressedSegmentsConsistentWithBytes)
{
    Rng rng(404);
    Line line{};
    for (int trial = 0; trial < 100; ++trial) {
        for (auto &byte : line)
            byte = rng.chance(0.5)
                ? 0
                : static_cast<std::uint8_t>(rng.range(256));
        const unsigned segs = comp_->compressedSegments(line.data());
        const std::size_t bytes = comp_->compress(line.data()).sizeBytes();
        EXPECT_EQ(segs, bytesToSegments(bytes));
        EXPECT_LE(segs, kSegmentsPerLine);
    }
}

TEST_P(CompressorProperty, DeterministicAcrossCalls)
{
    Rng rng(55);
    Line line{};
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.range(256));
    const CompressedBlock a = comp_->compress(line.data());
    const CompressedBlock b = comp_->compress(line.data());
    EXPECT_EQ(a.encoding, b.encoding);
    EXPECT_EQ(a.payload, b.payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CompressorProperty,
    ::testing::ValuesIn(allCompressorKinds()),
    [](const ::testing::TestParamInfo<CompressorKind> &info) {
        std::string name = makeCompressor(info.param)->name();
        std::string clean;
        for (const char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean += c;
        return clean;
    });

TEST(CompressorFactory, ByNameMatchesByKind)
{
    EXPECT_EQ(makeCompressor("bdi")->name(), "BDI");
    EXPECT_EQ(makeCompressor("fpc")->name(), "FPC");
    EXPECT_EQ(makeCompressor("cpack")->name(), "C-Pack");
    EXPECT_EQ(makeCompressor("zero")->name(), "Zero");
}

TEST(CompressorFactoryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeCompressor("lz4"), ::testing::ExitedWithCode(1),
                "unknown compressor");
}

} // namespace
} // namespace bvc
