/** @file Unit tests for the two-tag compressed LLC variants (Sec III). */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/two_tag_array.hh"
#include "test_lines.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

// 16KB, 4 physical ways -> 64 sets; same-set stride is 4KB.
constexpr std::size_t kSize = 16 * 1024;
constexpr std::size_t kWays = 4;
constexpr Addr kSetStride = 64 * kLineBytes;

Addr
setAddr(unsigned n)
{
    return 0x10000 + static_cast<Addr>(n) * kSetStride;
}

class TwoTagTest : public ::testing::Test
{
  protected:
    BdiCompressor bdi_;
};

TEST_F(TwoTagTest, CompressiblePairsDoubleCapacity)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line line = smallLine(); // 5 segments: two fit per way
    for (unsigned i = 0; i < 2 * kWays; ++i)
        llc.access(setAddr(i), AccessType::Read, line.data());
    for (unsigned i = 0; i < 2 * kWays; ++i)
        EXPECT_TRUE(llc.probe(setAddr(i))) << i;
    EXPECT_TRUE(llc.checkPairFit());
}

TEST_F(TwoTagTest, IncompressibleLinesUseOneTagPerWay)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    for (unsigned i = 0; i < 2 * kWays; ++i) {
        const Line line = randomLine(i);
        llc.access(setAddr(i), AccessType::Read, line.data());
    }
    // Only ~kWays incompressible lines can be resident.
    unsigned resident = 0;
    for (unsigned i = 0; i < 2 * kWays; ++i)
        resident += llc.probe(setAddr(i));
    EXPECT_LE(resident, kWays);
    EXPECT_TRUE(llc.checkPairFit());
}

TEST_F(TwoTagTest, NaiveEvictsPartnerOnMisfit)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line small = smallLine();
    // Fill the set with 8 compressible lines (4 ways x 2 tags).
    for (unsigned i = 0; i < 2 * kWays; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    // An incompressible fill cannot share a way: its partner must go.
    const Line incompressible = randomLine(42);
    const LlcResult result =
        llc.access(setAddr(100), AccessType::Read,
                   incompressible.data());
    EXPECT_FALSE(result.hit);
    // Victim + partner both back-invalidated.
    EXPECT_EQ(result.backInvalidations.size(), 2u);
    EXPECT_GE(llc.stats().get("partner_evictions_on_fill"), 1u);
    EXPECT_TRUE(llc.checkPairFit());
}

TEST_F(TwoTagTest, ModifiedAvoidsPartnerEvictionWhenPossible)
{
    TwoTagModifiedLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line small = smallLine();
    for (unsigned i = 0; i < 2 * kWays; ++i)
        llc.access(setAddr(i), AccessType::Read, small.data());
    // A 5-segment fill fits beside any 5-segment partner: the modified
    // policy must find a single-eviction victim.
    const LlcResult result =
        llc.access(setAddr(100), AccessType::Read, small.data());
    EXPECT_EQ(result.backInvalidations.size(), 1u);
    EXPECT_EQ(llc.stats().get("partner_evictions_on_fill"), 0u);
    EXPECT_TRUE(llc.checkPairFit());
}

TEST_F(TwoTagTest, ModifiedFallsBackWhenNothingFits)
{
    TwoTagModifiedLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    // Fill with incompressible lines: any further incompressible fill
    // must fall back to partner victimization semantics (here the
    // partner slots are empty, so a single eviction still suffices).
    for (unsigned i = 0; i < kWays; ++i) {
        const Line line = randomLine(i);
        llc.access(setAddr(i), AccessType::Read, line.data());
    }
    const Line line = randomLine(99);
    const LlcResult result =
        llc.access(setAddr(100), AccessType::Read, line.data());
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(llc.probe(setAddr(100)));
    EXPECT_TRUE(llc.checkPairFit());
    (void)result;
}

TEST_F(TwoTagTest, WritebackGrowthEvictsPartner)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line small = smallLine();
    // NRU fills the first two fills into tags 0 and 1 of way 0: the
    // two small lines share one physical way.
    llc.access(setAddr(0), AccessType::Read, small.data());
    llc.access(setAddr(1), AccessType::Read, small.data());
    ASSERT_TRUE(llc.probe(setAddr(1)));
    // Rewriting line 0 as incompressible grows it past its partner.
    const Line grown = randomLine(7);
    llc.access(setAddr(0), AccessType::Writeback, grown.data());
    EXPECT_TRUE(llc.checkPairFit());
    EXPECT_TRUE(llc.probe(setAddr(0)));
    EXPECT_FALSE(llc.probe(setAddr(1)));
    EXPECT_EQ(llc.stats().get("partner_evictions_on_write"), 1u);
}

TEST_F(TwoTagTest, DirtyEvictionsWriteBack)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line line = randomLine(1);
    llc.access(setAddr(0), AccessType::Read, line.data());
    llc.access(setAddr(0), AccessType::Writeback, line.data());
    // Evict it with incompressible fills.
    std::size_t writebacks = 0;
    for (unsigned i = 1; i <= 2 * kWays; ++i) {
        const Line filler = randomLine(i + 10);
        const LlcResult r =
            llc.access(setAddr(i), AccessType::Read, filler.data());
        writebacks += r.memWritebacks.size();
    }
    EXPECT_GE(writebacks, 1u);
    EXPECT_EQ(llc.stats().get("mem_writebacks"), writebacks);
}

TEST_F(TwoTagTest, ExtraTagLatencyOnEveryAccess)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line small = smallLine();
    const LlcResult miss =
        llc.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_EQ(miss.extraLatency, 1u); // +1 tag cycle
    const LlcResult hit =
        llc.access(setAddr(0), AccessType::Read, small.data());
    EXPECT_EQ(hit.extraLatency, 3u); // +1 tag, +2 decompression
}

TEST_F(TwoTagTest, ZeroLinesSkipDecompressionLatency)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line zero = zeroLine();
    llc.access(setAddr(0), AccessType::Read, zero.data());
    const LlcResult hit =
        llc.access(setAddr(0), AccessType::Read, zero.data());
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.extraLatency, 1u); // tag only
}

TEST_F(TwoTagTest, WritebackHitDoesNotDecompress)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line line = smallLine(); // compressible: 5 segments
    llc.access(setAddr(0), AccessType::Read, line.data());
    ASSERT_EQ(llc.stats().get("decompressions"), 0u);

    // A writeback overwrites the whole line: the stored copy is never
    // expanded, so neither the counter nor the latency may move.
    const LlcResult wb =
        llc.access(setAddr(0), AccessType::Writeback, line.data());
    EXPECT_TRUE(wb.hit);
    EXPECT_EQ(wb.extraLatency, 1u); // tag lookup only
    EXPECT_EQ(llc.stats().get("decompressions"), 0u);

    const LlcResult rd =
        llc.access(setAddr(0), AccessType::Read, line.data());
    EXPECT_TRUE(rd.hit);
    EXPECT_GT(rd.extraLatency, 1u);
    EXPECT_EQ(llc.stats().get("decompressions"), 1u);
}

TEST_F(TwoTagTest, WritebackMissPanics)
{
    TwoTagNaiveLlc llc(kSize, kWays, ReplacementKind::Nru, bdi_);
    const Line line = smallLine();
    EXPECT_DEATH(llc.access(setAddr(0), AccessType::Writeback,
                            line.data()),
                 "inclusion");
}

class TwoTagFuzz : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(TwoTagFuzz, PairFitInvariantUnderRandomTraffic)
{
    const BdiCompressor bdi;
    TwoTagNaiveLlc naive(kSize, kWays, GetParam(), bdi);
    TwoTagModifiedLlc modified(kSize, kWays, GetParam(), bdi);
    const DataPattern pattern(DataPatternKind::MixedGood, 5);
    Rng rng(77);
    Line line{};
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = 0x4000 + rng.range(4096) * kLineBytes;
        pattern.fillLine(blk, line.data());
        const AccessType type = rng.chance(0.1) &&
                naive.probe(blk) && modified.probe(blk)
            ? AccessType::Writeback
            : AccessType::Read;
        if (type == AccessType::Writeback) {
            naive.access(blk, type, line.data());
            modified.access(blk, type, line.data());
        } else {
            naive.access(blk, AccessType::Read, line.data());
            modified.access(blk, AccessType::Read, line.data());
        }
        if (step % 500 == 0) {
            ASSERT_TRUE(naive.checkPairFit());
            ASSERT_TRUE(modified.checkPairFit());
        }
    }
    ASSERT_TRUE(naive.checkPairFit());
    ASSERT_TRUE(modified.checkPairFit());
    // The modified policy must not be worse at retaining lines.
    EXPECT_GE(modified.stats().get("demand_hits") + 2000,
              naive.stats().get("demand_hits"));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TwoTagFuzz,
    ::testing::Values(ReplacementKind::Nru, ReplacementKind::Lru,
                      ReplacementKind::Srrip),
    [](const ::testing::TestParamInfo<ReplacementKind> &info) {
        return replacementName(info.param);
    });

} // namespace
} // namespace bvc
