/** @file Unit tests for the sparse functional memory. */

#include <gtest/gtest.h>

#include <cstring>

#include "memory/functional_memory.hh"

namespace bvc
{
namespace
{

TEST(FunctionalMemory, DefaultsToZeroMemory)
{
    FunctionalMemory mem;
    const std::uint8_t *line = mem.line(0x1000);
    for (std::size_t i = 0; i < kLineBytes; ++i)
        EXPECT_EQ(line[i], 0);
    EXPECT_EQ(mem.load64(0x1008), 0u);
}

TEST(FunctionalMemory, LazyInitializerFillsLines)
{
    FunctionalMemory mem([](Addr blk, std::uint8_t *out) {
        for (std::size_t i = 0; i < kLineBytes; ++i)
            out[i] = static_cast<std::uint8_t>(blk >> 6);
    });
    EXPECT_EQ(mem.line(4 * kLineBytes)[0], 4);
    EXPECT_EQ(mem.line(5 * kLineBytes)[63], 5);
}

TEST(FunctionalMemory, StoreThenLoadRoundTrips)
{
    FunctionalMemory mem;
    mem.store64(0x2010, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.load64(0x2010), 0xdeadbeefcafef00dULL);
}

TEST(FunctionalMemory, StoreOnlyAffectsItsWord)
{
    FunctionalMemory mem([](Addr, std::uint8_t *out) {
        std::memset(out, 0x11, kLineBytes);
    });
    mem.store64(0x3008, 0);
    EXPECT_EQ(mem.load64(0x3000), 0x1111111111111111ULL);
    EXPECT_EQ(mem.load64(0x3008), 0u);
    EXPECT_EQ(mem.load64(0x3010), 0x1111111111111111ULL);
}

TEST(FunctionalMemory, UnalignedAddressesSnapToWord)
{
    FunctionalMemory mem;
    mem.store64(0x4003, 42); // snaps to 0x4000
    EXPECT_EQ(mem.load64(0x4000), 42u);
    EXPECT_EQ(mem.load64(0x4005), 42u);
}

TEST(FunctionalMemory, StorePersistsOverInitializer)
{
    bool initialized = false;
    FunctionalMemory mem([&](Addr, std::uint8_t *out) {
        initialized = true;
        std::memset(out, 0xFF, kLineBytes);
    });
    mem.store64(0x5000, 7);
    EXPECT_TRUE(initialized); // store materialized the line first
    EXPECT_EQ(mem.load64(0x5000), 7u);
    // The rest of the line keeps its initialized content.
    EXPECT_EQ(mem.load64(0x5008), ~0ULL);
}

TEST(FunctionalMemory, TouchedLinesCountsUniqueBlocks)
{
    FunctionalMemory mem;
    mem.line(0);
    mem.line(8);      // same block
    mem.line(kLineBytes);
    mem.store64(2 * kLineBytes, 1);
    EXPECT_EQ(mem.touchedLines(), 3u);
}

} // namespace
} // namespace bvc
