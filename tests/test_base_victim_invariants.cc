/**
 * @file
 * Property tests for the paper's central guarantee (DESIGN.md §5): a
 * Base-Victim cache's Baseline section mirrors an uncompressed cache
 * fed the same access stream, at every step, for every baseline
 * replacement policy — and therefore never has a lower hit rate.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/base_victim_cache.hh"
#include "core/uncompressed_llc.hh"
#include "test_lines.hh"
#include "trace/data_patterns.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using namespace testhelpers;

constexpr std::size_t kSize = 32 * 1024;
constexpr std::size_t kWays = 8;

using MirrorParam =
    std::tuple<ReplacementKind, VictimReplKind, DataPatternKind>;

class MirrorInvariant : public ::testing::TestWithParam<MirrorParam>
{
};

TEST_P(MirrorInvariant, BaseContentMirrorsUncompressedCache)
{
    const auto [baseRepl, victimRepl, patternKind] = GetParam();
    const BdiCompressor bdi;
    BaseVictimLlc bv(kSize, kWays, baseRepl, victimRepl, bdi);
    UncompressedLlc shadow(kSize, kWays, baseRepl);
    const DataPattern pattern(patternKind, 123);
    Rng rng(99);

    Line line{};
    std::uint64_t shadowHits = 0, bvHits = 0;
    for (int step = 0; step < 30000; ++step) {
        // Small footprint so sets see heavy replacement churn.
        const Addr blk = rng.range(3000) * kLineBytes;
        pattern.fillLine(blk, line.data());

        AccessType type = AccessType::Read;
        const double u = rng.uniform();
        if (u < 0.10 && bv.probeBase(blk) && shadow.probe(blk))
            type = AccessType::Writeback;
        else if (u < 0.15)
            type = AccessType::Prefetch;

        const LlcResult rs = shadow.access(blk, type, line.data());
        const LlcResult rb = bv.access(blk, type, line.data());

        // Hit superset: every uncompressed hit is a Base-Victim hit.
        if (rs.hit) {
            ASSERT_TRUE(rb.hit) << "step " << step;
        }
        shadowHits += rs.hit;
        bvHits += rb.hit;

        // Structural invariants hold continuously.
        if (step % 1000 == 0) {
            ASSERT_TRUE(bv.checkInvariants()) << "step " << step;
        }

        // Base content mirrors the uncompressed cache, set by set.
        if (step % 2500 == 0) {
            for (const SetIdx set : indexRange<SetIdx>(bv.numSets())) {
                ASSERT_EQ(bv.baseSetContents(set),
                          shadow.setContents(set))
                    << "set " << set.get() << " step " << step;
            }
        }
    }

    // Full mirror check at the end.
    for (const SetIdx set : indexRange<SetIdx>(bv.numSets()))
        ASSERT_EQ(bv.baseSetContents(set), shadow.setContents(set));
    EXPECT_GE(bvHits, shadowHits);
    EXPECT_TRUE(bv.checkInvariants());
}

TEST_P(MirrorInvariant, DramReadsNeverExceedBaseline)
{
    const auto [baseRepl, victimRepl, patternKind] = GetParam();
    const BdiCompressor bdi;
    BaseVictimLlc bv(kSize, kWays, baseRepl, victimRepl, bdi);
    UncompressedLlc shadow(kSize, kWays, baseRepl);
    const DataPattern pattern(patternKind, 321);
    Rng rng(7);

    Line line{};
    for (int step = 0; step < 20000; ++step) {
        const Addr blk = rng.range(2000) * kLineBytes;
        pattern.fillLine(blk, line.data());
        shadow.access(blk, AccessType::Read, line.data());
        bv.access(blk, AccessType::Read, line.data());
    }
    // Misses (== memory reads) can only shrink with the victim cache.
    EXPECT_LE(bv.stats().get("demand_misses"),
              shadow.stats().get("demand_misses"));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, MirrorInvariant,
    ::testing::Combine(
        ::testing::Values(ReplacementKind::Nru, ReplacementKind::Lru,
                          ReplacementKind::Srrip,
                          ReplacementKind::Drrip,
                          ReplacementKind::Random,
                          ReplacementKind::Char),
        ::testing::Values(VictimReplKind::Random, VictimReplKind::Ecm,
                          VictimReplKind::Lru, VictimReplKind::SizeMix,
                          VictimReplKind::Camp),
        ::testing::Values(DataPatternKind::MixedGood,
                          DataPatternKind::MixedPoor)),
    [](const ::testing::TestParamInfo<MirrorParam> &info) {
        return replacementName(std::get<0>(info.param)) + "_" +
               victimReplName(std::get<1>(info.param)) + "_" +
               DataPattern::kindName(std::get<2>(info.param)).substr(6);
    });

} // namespace
} // namespace bvc
