/** @file Unit tests for the C-Pack codec. */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "compress/cpack.hh"
#include "util/rng.hh"

namespace bvc
{
namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

Line
roundTrip(const CpackCompressor &cp, const Line &in)
{
    const CompressedBlock block = cp.compress(in.data());
    Line out{};
    cp.decompress(block, out.data());
    return out;
}

Line
lineOf32(const std::uint32_t (&words)[16])
{
    Line line{};
    for (unsigned i = 0; i < 16; ++i)
        std::memcpy(line.data() + 4 * i, &words[i], 4);
    return line;
}

TEST(Cpack, ZeroLineIsTiny)
{
    CpackCompressor cp;
    Line line{};
    // 16 x 2-bit zzzz codes = 4 bytes.
    EXPECT_EQ(cp.compress(line.data()).sizeBytes(), 4u);
    EXPECT_EQ(roundTrip(cp, line), line);
}

TEST(Cpack, FullDictionaryMatches)
{
    CpackCompressor cp;
    // One unique word repeated: first is verbatim, rest are mmmm.
    Line line = lineOf32({0xdeadbeefu, 0xdeadbeefu, 0xdeadbeefu,
                          0xdeadbeefu, 0xdeadbeefu, 0xdeadbeefu,
                          0xdeadbeefu, 0xdeadbeefu, 0xdeadbeefu,
                          0xdeadbeefu, 0xdeadbeefu, 0xdeadbeefu,
                          0xdeadbeefu, 0xdeadbeefu, 0xdeadbeefu,
                          0xdeadbeefu});
    const CompressedBlock block = cp.compress(line.data());
    // 34 bits verbatim + 15 x 6 bits = 124 bits -> 16 bytes.
    EXPECT_EQ(block.sizeBytes(), 16u);
    EXPECT_EQ(roundTrip(cp, line), line);
}

TEST(Cpack, PartialMatchesUpperBytes)
{
    CpackCompressor cp;
    // Words sharing the upper 3 bytes: mmmx after the first.
    Line line = lineOf32({0x12345600u, 0x12345601u, 0x12345622u,
                          0x123456ffu, 0x12345600u, 0x12345610u,
                          0x12345620u, 0x12345630u, 0x12345640u,
                          0x12345650u, 0x12345660u, 0x12345670u,
                          0x12345680u, 0x12345690u, 0x123456a0u,
                          0x123456b0u});
    const CompressedBlock block = cp.compress(line.data());
    // First word verbatim (34b), 15 x mmmx (18b) = 304 bits = 38B max;
    // here several full matches shrink it further.
    EXPECT_LT(block.sizeBytes(), 40u);
    EXPECT_EQ(roundTrip(cp, line), line);
}

TEST(Cpack, ZzzxSmallBytePattern)
{
    CpackCompressor cp;
    Line line = lineOf32({0x1, 0x7f, 0xff, 0x42, 0x1, 0x7f, 0xff, 0x42,
                          0x1, 0x7f, 0xff, 0x42, 0x1, 0x7f, 0xff, 0x42});
    const CompressedBlock block = cp.compress(line.data());
    // 12 bits per word -> 24 bytes.
    EXPECT_EQ(block.sizeBytes(), 24u);
    EXPECT_EQ(roundTrip(cp, line), line);
}

TEST(Cpack, IncompressibleFallsBackVerbatim)
{
    CpackCompressor cp;
    Rng rng(321);
    Line line{};
    for (unsigned i = 0; i < 16; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.next() | 0x01010101);
        std::memcpy(line.data() + 4 * i, &w, 4);
    }
    const CompressedBlock block = cp.compress(line.data());
    EXPECT_LE(block.sizeBytes(), kLineBytes);
    EXPECT_EQ(roundTrip(cp, line), line);
}

TEST(Cpack, DictionaryStateMatchesBetweenEncodeAndDecode)
{
    CpackCompressor cp;
    Rng rng(9);
    Line line{};
    // Many distinct words force dictionary wraparound (> 16 pushes).
    for (int trial = 0; trial < 100; ++trial) {
        for (unsigned i = 0; i < 16; ++i) {
            const auto w = static_cast<std::uint32_t>(rng.next());
            std::memcpy(line.data() + 4 * i, &w, 4);
        }
        EXPECT_EQ(roundTrip(cp, line), line);
    }
}

TEST(Cpack, MixedContentFuzz)
{
    CpackCompressor cp;
    Rng rng(11);
    Line line{};
    for (int trial = 0; trial < 300; ++trial) {
        std::uint32_t dictWord = static_cast<std::uint32_t>(rng.next());
        for (unsigned i = 0; i < 16; ++i) {
            std::uint32_t w;
            const double u = rng.uniform();
            if (u < 0.3) {
                w = 0;
            } else if (u < 0.5) {
                w = dictWord;
            } else if (u < 0.7) {
                w = (dictWord & 0xFFFFFF00u) |
                    static_cast<std::uint32_t>(rng.range(256));
            } else {
                w = static_cast<std::uint32_t>(rng.next());
            }
            std::memcpy(line.data() + 4 * i, &w, 4);
        }
        EXPECT_EQ(roundTrip(cp, line), line);
        EXPECT_LE(cp.compress(line.data()).sizeBytes(), kLineBytes);
    }
}

} // namespace
} // namespace bvc
