/** @file Tests for the Table-I-equivalent workload suite. */

#include <gtest/gtest.h>

#include <set>

#include "trace/workload_suite.hh"

namespace bvc
{
namespace
{

TEST(WorkloadSuite, PopulationMatchesTableI)
{
    const WorkloadSuite suite;
    EXPECT_EQ(suite.all().size(), 100u);
    EXPECT_EQ(suite.categoryIndices(WorkloadCategory::SpecFp).size(),
              30u);
    EXPECT_EQ(suite.categoryIndices(WorkloadCategory::SpecInt).size(),
              29u);
    EXPECT_EQ(
        suite.categoryIndices(WorkloadCategory::Productivity).size(),
        14u);
    EXPECT_EQ(suite.categoryIndices(WorkloadCategory::Client).size(),
              27u);
}

TEST(WorkloadSuite, SensitivitySplitMatchesSectionV)
{
    const WorkloadSuite suite;
    EXPECT_EQ(suite.sensitiveIndices().size(), 60u);
    EXPECT_EQ(suite.friendlyIndices().size(), 50u);
    EXPECT_EQ(suite.unfriendlyIndices().size(), 10u);
}

TEST(WorkloadSuite, NamesAreUnique)
{
    const WorkloadSuite suite;
    std::set<std::string> names;
    for (const WorkloadInfo &info : suite.all())
        names.insert(info.params.name);
    EXPECT_EQ(names.size(), 100u);
}

TEST(WorkloadSuite, SeedsAreUnique)
{
    const WorkloadSuite suite;
    std::set<std::uint64_t> seeds;
    for (const WorkloadInfo &info : suite.all())
        seeds.insert(info.params.seed);
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(WorkloadSuite, SensitiveTracesExceedTheLlc)
{
    const WorkloadSuite suite(512 * 1024);
    for (const std::size_t idx : suite.sensitiveIndices()) {
        const TraceParams &p = suite.all()[idx].params;
        const std::uint64_t footprint =
            p.wsBytes + p.residentBytes + p.hotBytes +
            (p.chaseFrac > 0 ? p.chaseBytes : 0);
        EXPECT_GT(footprint, 512u * 1024) << p.name;
    }
}

TEST(WorkloadSuite, InsensitiveTracesHaveNoResidentRegion)
{
    const WorkloadSuite suite;
    for (const WorkloadInfo &info : suite.all()) {
        if (!info.cacheSensitive) {
            EXPECT_EQ(info.params.residentBytes, 0u)
                << info.params.name;
        }
    }
}

TEST(WorkloadSuite, FootprintsScaleWithLlcReference)
{
    const WorkloadSuite small(512 * 1024);
    const WorkloadSuite paper(2 * 1024 * 1024);
    for (std::size_t i = 0; i < 100; ++i) {
        const double ratio =
            static_cast<double>(paper.all()[i].params.wsBytes) /
            static_cast<double>(small.all()[i].params.wsBytes);
        EXPECT_NEAR(ratio, 4.0, 0.001) << i; // up to rounding
    }
}

TEST(WorkloadSuite, MixesUseSensitiveTracesWithoutDuplicates)
{
    const WorkloadSuite suite;
    const auto mixes = suite.mixes(20);
    ASSERT_EQ(mixes.size(), 20u);
    const auto sensitive = suite.sensitiveIndices();
    const std::set<std::size_t> sensitiveSet(sensitive.begin(),
                                             sensitive.end());
    for (const auto &mix : mixes) {
        std::set<std::size_t> unique(mix.begin(), mix.end());
        EXPECT_EQ(unique.size(), 4u);
        for (const std::size_t idx : mix)
            EXPECT_TRUE(sensitiveSet.count(idx));
    }
}

TEST(WorkloadSuite, MixesAreDeterministic)
{
    const WorkloadSuite a, b;
    EXPECT_EQ(a.mixes(20), b.mixes(20));
}

TEST(WorkloadSuite, CategoryNamesResolve)
{
    EXPECT_STREQ(categoryName(WorkloadCategory::SpecFp), "SPECFP");
    EXPECT_STREQ(categoryName(WorkloadCategory::SpecInt), "SPECINT");
    EXPECT_STREQ(categoryName(WorkloadCategory::Productivity),
                 "Productivity");
    EXPECT_STREQ(categoryName(WorkloadCategory::Client), "Client");
}

TEST(WorkloadSuite, EveryCategoryHasSensitiveAndFriendlyMembers)
{
    const WorkloadSuite suite;
    for (const auto category :
         {WorkloadCategory::SpecFp, WorkloadCategory::SpecInt,
          WorkloadCategory::Productivity, WorkloadCategory::Client}) {
        std::size_t sensitive = 0, friendly = 0;
        for (const std::size_t idx : suite.categoryIndices(category)) {
            sensitive += suite.all()[idx].cacheSensitive;
            friendly += suite.all()[idx].cacheSensitive &&
                suite.all()[idx].compressionFriendly;
        }
        EXPECT_GT(sensitive, 0u);
        EXPECT_GT(friendly, 0u);
    }
}

} // namespace
} // namespace bvc
